// Core domain types shared by every layer: OpIds, member identity,
// replicaset membership. Kept below binlog/raft in the dependency order so
// both can use them.

#ifndef MYRAFT_WIRE_TYPES_H_
#define MYRAFT_WIRE_TYPES_H_

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/string_util.h"

namespace myraft {

/// Raft (term, index) pair stamped on every replicated log entry.
/// §3: "every transaction is assigned an OpID (Raft term and log index)".
struct OpId {
  uint64_t term = 0;
  uint64_t index = 0;

  auto operator<=>(const OpId&) const = default;

  /// Raft log ordering: an entry at a higher term is "later" regardless of
  /// index; within a term, higher index is later. This is exactly the
  /// "longest log wins" comparison used by elections.
  bool IsLaterThan(const OpId& other) const {
    if (term != other.term) return term > other.term;
    return index > other.index;
  }

  bool IsZero() const { return term == 0 && index == 0; }

  std::string ToString() const {
    return StringPrintf("%llu.%llu", (unsigned long long)term,
                        (unsigned long long)index);
  }
};

/// Minimum/zero OpId: precedes every real entry.
inline constexpr OpId kZeroOpId{0, 0};

/// Member identity within a replicaset. Stable across restarts.
using MemberId = std::string;

/// Geographical region name (e.g. "region-a"). FlexiRaft groups quorums by
/// region (§4.1: "groups are constructed based on physical proximity").
using RegionId = std::string;

/// What process backs the member (Table 1): a full MySQL server or a
/// logtailer (stores the log but has no storage engine).
enum class MemberKind : uint8_t {
  kMySql = 0,
  kLogtailer = 1,
};

/// Raft participation level. Witnesses in the paper are logtailer voters;
/// learners are passive non-voters.
enum class RaftMemberType : uint8_t {
  kVoter = 0,
  kNonVoter = 1,  // learner
};

std::string_view MemberKindToString(MemberKind kind);
std::string_view RaftMemberTypeToString(RaftMemberType type);

/// One member of a replicaset's Raft ring.
struct MemberInfo {
  MemberId id;
  RegionId region;
  MemberKind kind = MemberKind::kMySql;
  RaftMemberType type = RaftMemberType::kVoter;

  bool operator==(const MemberInfo&) const = default;

  /// Table 1 terminology: Leader / Follower / Learner / Witness. Witness =
  /// logtailer voter.
  bool is_witness() const {
    return kind == MemberKind::kLogtailer && type == RaftMemberType::kVoter;
  }
  bool is_learner() const { return type == RaftMemberType::kNonVoter; }
  bool is_voter() const { return type == RaftMemberType::kVoter; }
  bool has_engine() const { return kind == MemberKind::kMySql; }
};

/// Replicaset membership. Changed one member at a time (§2.2: "Quorum
/// intersection is implicitly achieved by allowing only one membership
/// change at a time").
///
/// Two ways a config can be identified, depending on the reconfig path:
///  * log-based (legacy): `config_index` is the log index of the
///    kConfigChange entry that created it; version/term stay 0.
///  * logless (Schultz et al.): the config is versioned consensus STATE,
///    identified by (config_term, config_version) and ordered
///    lexicographically with the term dominating — a new leader rewrites
///    config_term to its own term, superseding any uncommitted config a
///    deposed leader may still be propagating. `config_index` is 0.
struct MembershipConfig {
  std::vector<MemberInfo> members;
  /// Log index at which this config was appended (0 for the bootstrap
  /// config and for every logless config).
  uint64_t config_index = 0;
  /// Logless config identity: bumped by one on every config change.
  uint64_t config_version = 0;
  /// Term of the leader that (re)issued this config.
  uint64_t config_term = 0;
  /// Data-quorum override consulted by the quorum engine: "" (engine
  /// default), "majority", "single-region", or "multi:<K>". Making the
  /// quorum rule part of the config turns FlexiRaft data-quorum changes
  /// into ordinary config-version bumps.
  std::string quorum_spec;

  bool operator==(const MembershipConfig&) const = default;

  /// Lexicographic (config_term, config_version) comparison — the logless
  /// "which config supersedes which" rule.
  bool IdIsNewerThan(const MembershipConfig& other) const {
    if (config_term != other.config_term) {
      return config_term > other.config_term;
    }
    return config_version > other.config_version;
  }
  bool SameIdAs(const MembershipConfig& other) const {
    return config_term == other.config_term &&
           config_version == other.config_version;
  }

  const MemberInfo* Find(const MemberId& id) const;
  bool Contains(const MemberId& id) const { return Find(id) != nullptr; }
  std::vector<MemberId> VoterIds() const;
  std::vector<MemberId> MemberIds() const;
  int NumVoters() const;
  /// Voters grouped by region, insertion-ordered by first appearance.
  std::vector<std::pair<RegionId, std::vector<MemberId>>> VotersByRegion()
      const;
  std::string ToString() const;
};

/// Raft role of a member (§2.1).
enum class RaftRole : uint8_t {
  kFollower = 0,
  kCandidate = 1,
  kLeader = 2,
  kLearner = 3,
};

std::string_view RaftRoleToString(RaftRole role);

/// MySQL-side role orchestrated by the plugin callbacks (§3.3).
enum class DbRole : uint8_t {
  kReplica = 0,
  kPrimary = 1,
  kNone = 2,  // logtailers have no database role
};

std::string_view DbRoleToString(DbRole role);

}  // namespace myraft

#endif  // MYRAFT_WIRE_TYPES_H_

#include "wire/messages.h"

#include "util/coding.h"

namespace myraft {

namespace {

void PutString(std::string* dst, const std::string& s) {
  PutLengthPrefixed(dst, s);
}

bool GetString(Slice* in, std::string* out) {
  Slice s;
  if (!GetLengthPrefixed(in, &s)) return false;
  *out = s.ToString();
  return true;
}

void PutOpId(std::string* dst, const OpId& id) {
  PutVarint64(dst, id.term);
  PutVarint64(dst, id.index);
}

bool GetOpId(Slice* in, OpId* id) {
  return GetVarint64(in, &id->term) && GetVarint64(in, &id->index);
}

void PutRoute(std::string* dst, const std::vector<MemberId>& route) {
  PutVarint64(dst, route.size());
  for (const auto& hop : route) PutString(dst, hop);
}

bool GetRoute(Slice* in, std::vector<MemberId>* route) {
  uint64_t n;
  if (!GetVarint64(in, &n)) return false;
  route->clear();
  for (uint64_t i = 0; i < n; ++i) {
    std::string hop;
    if (!GetString(in, &hop)) return false;
    route->push_back(std::move(hop));
  }
  return true;
}

Status Truncated(const char* what) {
  return Status::Corruption(std::string("wire: truncated ") + what);
}

}  // namespace

// --- AppendEntriesRequest ---------------------------------------------------

void AppendEntriesRequest::EncodeTo(std::string* dst) const {
  PutString(dst, leader);
  PutString(dst, dest);
  PutRoute(dst, route);
  PutVarint64(dst, term);
  PutOpId(dst, prev);
  PutOpId(dst, commit_marker);
  uint8_t flags = 0;
  if (proxy_payload_omitted) flags |= 0x1;
  if (entries_compressed) flags |= 0x2;
  dst->push_back(static_cast<char>(flags));
  PutVarint64(dst, entries.size());
  for (const auto& e : entries) e.EncodeTo(dst);
  // Optional trailing trace context: omitted entirely when untraced so
  // the encoding stays byte-identical to the pre-tracing format. The
  // lease group sits after it, and the config group after that, so a
  // present later group forces every earlier one out (zeros allowed) to
  // keep the groups positionally unambiguous.
  const bool has_config = !config_payload.empty();
  const bool has_lease = lease_duration_micros != 0 ||
                         lease_sent_micros != 0 || has_config;
  if (trace_id != 0 || trace_span_id != 0 || has_lease) {
    PutVarint64(dst, trace_id);
    PutVarint64(dst, trace_span_id);
  }
  if (has_lease) {
    PutVarint64(dst, lease_duration_micros);
    PutVarint64(dst, lease_sent_micros);
  }
  if (has_config) PutLengthPrefixed(dst, config_payload);
}

Result<AppendEntriesRequest> AppendEntriesRequest::DecodeFrom(Slice in) {
  AppendEntriesRequest req;
  if (!GetString(&in, &req.leader) || !GetString(&in, &req.dest) ||
      !GetRoute(&in, &req.route) || !GetVarint64(&in, &req.term) ||
      !GetOpId(&in, &req.prev) || !GetOpId(&in, &req.commit_marker)) {
    return Truncated("append-entries header");
  }
  if (in.empty()) return Truncated("append-entries flags");
  req.proxy_payload_omitted = (in[0] & 0x1) != 0;
  req.entries_compressed = (in[0] & 0x2) != 0;
  in.RemovePrefix(1);
  uint64_t n;
  if (!GetVarint64(&in, &n)) return Truncated("append-entries count");
  for (uint64_t i = 0; i < n; ++i) {
    auto entry = LogEntry::DecodeFrom(&in);
    if (!entry.ok()) return entry.status();
    req.entries.push_back(std::move(*entry));
  }
  if (!in.empty()) {  // optional trailing trace context (absent = untraced)
    if (!GetVarint64(&in, &req.trace_id) ||
        !GetVarint64(&in, &req.trace_span_id)) {
      return Truncated("append-entries trace context");
    }
  }
  if (!in.empty()) {  // optional trailing lease grant (absent = no lease)
    if (!GetVarint64(&in, &req.lease_duration_micros) ||
        !GetVarint64(&in, &req.lease_sent_micros)) {
      return Truncated("append-entries lease");
    }
  }
  if (!in.empty()) {  // optional trailing config (absent = logless off)
    Slice config;
    if (!GetLengthPrefixed(&in, &config)) {
      return Truncated("append-entries config");
    }
    req.config_payload = config.ToString();
  }
  if (!in.empty()) return Status::Corruption("wire: trailing bytes");
  return req;
}

uint64_t AppendEntriesRequest::PayloadBytes() const {
  uint64_t total = 0;
  for (const auto& e : entries) total += e.payload_bytes().size();
  return total;
}

// --- AppendEntriesResponse ----------------------------------------------------

void AppendEntriesResponse::EncodeTo(std::string* dst) const {
  PutString(dst, from);
  PutString(dst, dest);
  PutRoute(dst, route);
  PutVarint64(dst, term);
  dst->push_back(success ? 1 : 0);
  PutOpId(dst, last_received);
  PutVarint64(dst, last_durable_index);
  PutVarint64(dst, request_prev_index);
  // Optional trailing groups, as in the request: a present later group
  // forces every earlier one out so the groups stay positionally
  // unambiguous.
  const bool has_config = config_term != 0 || config_version != 0;
  const bool has_lease = lease_granted_micros != 0 || has_config;
  if (trace_id != 0 || trace_span_id != 0 || has_lease) {
    PutVarint64(dst, trace_id);
    PutVarint64(dst, trace_span_id);
  }
  if (has_lease) PutVarint64(dst, lease_granted_micros);
  if (has_config) {
    PutVarint64(dst, config_term);
    PutVarint64(dst, config_version);
  }
}

Result<AppendEntriesResponse> AppendEntriesResponse::DecodeFrom(Slice in) {
  AppendEntriesResponse resp;
  if (!GetString(&in, &resp.from) || !GetString(&in, &resp.dest) ||
      !GetRoute(&in, &resp.route) || !GetVarint64(&in, &resp.term)) {
    return Truncated("append-response header");
  }
  if (in.empty()) return Truncated("append-response flag");
  resp.success = in[0] != 0;
  in.RemovePrefix(1);
  if (!GetOpId(&in, &resp.last_received) ||
      !GetVarint64(&in, &resp.last_durable_index) ||
      !GetVarint64(&in, &resp.request_prev_index)) {
    return Truncated("append-response body");
  }
  if (!in.empty()) {  // optional trailing trace context (absent = untraced)
    if (!GetVarint64(&in, &resp.trace_id) ||
        !GetVarint64(&in, &resp.trace_span_id)) {
      return Truncated("append-response trace context");
    }
  }
  if (!in.empty()) {  // optional trailing lease echo (absent = no grant)
    if (!GetVarint64(&in, &resp.lease_granted_micros)) {
      return Truncated("append-response lease echo");
    }
  }
  if (!in.empty()) {  // optional trailing config ack (absent = logless off)
    if (!GetVarint64(&in, &resp.config_term) ||
        !GetVarint64(&in, &resp.config_version)) {
      return Truncated("append-response config ack");
    }
  }
  if (!in.empty()) return Status::Corruption("wire: trailing bytes");
  return resp;
}

// --- VoteRequest -------------------------------------------------------------

void VoteRequest::EncodeTo(std::string* dst) const {
  PutString(dst, candidate);
  PutString(dst, dest);
  PutVarint64(dst, term);
  PutOpId(dst, last_log);
  PutString(dst, candidate_region);
  uint8_t flags = 0;
  if (pre_vote) flags |= 1;
  if (mock_election) flags |= 2;
  dst->push_back(static_cast<char>(flags));
  PutOpId(dst, leader_cursor_snapshot);
  // Optional trailing config identity (logless reconfig): absent when
  // off, so logless-off traffic stays pre-reconfig-decodable.
  if (config_term != 0 || config_version != 0) {
    PutVarint64(dst, config_term);
    PutVarint64(dst, config_version);
  }
}

Result<VoteRequest> VoteRequest::DecodeFrom(Slice in) {
  VoteRequest req;
  if (!GetString(&in, &req.candidate) || !GetString(&in, &req.dest) ||
      !GetVarint64(&in, &req.term) || !GetOpId(&in, &req.last_log) ||
      !GetString(&in, &req.candidate_region)) {
    return Truncated("vote-request header");
  }
  if (in.empty()) return Truncated("vote-request flags");
  const uint8_t flags = static_cast<uint8_t>(in[0]);
  in.RemovePrefix(1);
  req.pre_vote = (flags & 1) != 0;
  req.mock_election = (flags & 2) != 0;
  if (!GetOpId(&in, &req.leader_cursor_snapshot)) {
    return Truncated("vote-request snapshot");
  }
  if (!in.empty()) {  // optional trailing config identity (logless)
    if (!GetVarint64(&in, &req.config_term) ||
        !GetVarint64(&in, &req.config_version)) {
      return Truncated("vote-request config identity");
    }
  }
  if (!in.empty()) return Status::Corruption("wire: trailing bytes");
  return req;
}

// --- VoteResponse -------------------------------------------------------------

void VoteResponse::EncodeTo(std::string* dst) const {
  PutString(dst, from);
  PutString(dst, dest);
  PutVarint64(dst, term);
  uint8_t flags = 0;
  if (granted) flags |= 1;
  if (pre_vote) flags |= 2;
  if (mock_election) flags |= 4;
  dst->push_back(static_cast<char>(flags));
  PutString(dst, reason);
  PutString(dst, voter_region);
  PutVarint64(dst, last_leader_term);
  PutString(dst, last_leader_region);
}

Result<VoteResponse> VoteResponse::DecodeFrom(Slice in) {
  VoteResponse resp;
  if (!GetString(&in, &resp.from) || !GetString(&in, &resp.dest) ||
      !GetVarint64(&in, &resp.term)) {
    return Truncated("vote-response header");
  }
  if (in.empty()) return Truncated("vote-response flags");
  const uint8_t flags = static_cast<uint8_t>(in[0]);
  in.RemovePrefix(1);
  resp.granted = (flags & 1) != 0;
  resp.pre_vote = (flags & 2) != 0;
  resp.mock_election = (flags & 4) != 0;
  if (!GetString(&in, &resp.reason) || !GetString(&in, &resp.voter_region)) {
    return Truncated("vote-response body");
  }
  if (!GetVarint64(&in, &resp.last_leader_term) ||
      !GetString(&in, &resp.last_leader_region)) {
    return Truncated("vote-response leader view");
  }
  if (!in.empty()) return Status::Corruption("wire: trailing bytes");
  return resp;
}

// --- StartElectionRequest ------------------------------------------------------

void StartElectionRequest::EncodeTo(std::string* dst) const {
  PutString(dst, from);
  PutString(dst, dest);
  PutVarint64(dst, term);
  dst->push_back(mock ? 1 : 0);
  PutOpId(dst, leader_cursor_snapshot);
}

Result<StartElectionRequest> StartElectionRequest::DecodeFrom(Slice in) {
  StartElectionRequest req;
  if (!GetString(&in, &req.from) || !GetString(&in, &req.dest) ||
      !GetVarint64(&in, &req.term)) {
    return Truncated("start-election");
  }
  if (in.empty()) return Truncated("start-election flags");
  req.mock = in[0] != 0;
  in.RemovePrefix(1);
  if (!GetOpId(&in, &req.leader_cursor_snapshot)) {
    return Truncated("start-election snapshot");
  }
  if (!in.empty()) return Status::Corruption("wire: trailing bytes");
  return req;
}

// --- Envelope -------------------------------------------------------------------

void EncodeMessage(const Message& msg, std::string* dst) {
  std::visit(
      [dst](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        MessageType type;
        if constexpr (std::is_same_v<T, AppendEntriesRequest>) {
          type = MessageType::kAppendEntriesRequest;
        } else if constexpr (std::is_same_v<T, AppendEntriesResponse>) {
          type = MessageType::kAppendEntriesResponse;
        } else if constexpr (std::is_same_v<T, VoteRequest>) {
          type = MessageType::kVoteRequest;
        } else if constexpr (std::is_same_v<T, VoteResponse>) {
          type = MessageType::kVoteResponse;
        } else {
          type = MessageType::kStartElectionRequest;
        }
        dst->push_back(static_cast<char>(type));
        m.EncodeTo(dst);
      },
      msg);
}

Result<Message> DecodeMessage(Slice in) {
  if (in.empty()) return Status::Corruption("wire: empty message");
  const uint8_t tag = static_cast<uint8_t>(in[0]);
  in.RemovePrefix(1);
  switch (static_cast<MessageType>(tag)) {
    case MessageType::kAppendEntriesRequest: {
      auto r = AppendEntriesRequest::DecodeFrom(in);
      if (!r.ok()) return r.status();
      return Message(std::move(*r));
    }
    case MessageType::kAppendEntriesResponse: {
      auto r = AppendEntriesResponse::DecodeFrom(in);
      if (!r.ok()) return r.status();
      return Message(std::move(*r));
    }
    case MessageType::kVoteRequest: {
      auto r = VoteRequest::DecodeFrom(in);
      if (!r.ok()) return r.status();
      return Message(std::move(*r));
    }
    case MessageType::kVoteResponse: {
      auto r = VoteResponse::DecodeFrom(in);
      if (!r.ok()) return r.status();
      return Message(std::move(*r));
    }
    case MessageType::kStartElectionRequest: {
      auto r = StartElectionRequest::DecodeFrom(in);
      if (!r.ok()) return r.status();
      return Message(std::move(*r));
    }
  }
  return Status::Corruption("wire: unknown message type");
}

MemberId MessageDest(const Message& msg) {
  return std::visit([](const auto& m) { return m.dest; }, msg);
}

MemberId MessageFrom(const Message& msg) {
  return std::visit(
      [](const auto& m) -> MemberId {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, AppendEntriesRequest>) {
          return m.leader;
        } else if constexpr (std::is_same_v<T, VoteRequest>) {
          return m.candidate;
        } else {
          return m.from;
        }
      },
      msg);
}

MemberId MessageNextHop(const Message& msg) {
  if (const auto* request = std::get_if<AppendEntriesRequest>(&msg)) {
    if (!request->route.empty()) return request->route.front();
  }
  if (const auto* response = std::get_if<AppendEntriesResponse>(&msg)) {
    if (!response->route.empty()) return response->route.front();
  }
  return MessageDest(msg);
}

uint64_t MessageWireBytes(const Message& msg) {
  std::string buf;
  EncodeMessage(msg, &buf);
  return buf.size();
}

}  // namespace myraft

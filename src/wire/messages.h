// RPC messages of the MyRaft wire protocol: AppendEntries (with the
// Proxying extension's PROXY_OP form, §4.2), RequestVote (with pre-vote
// and Mock Election extensions, §4.3) and TransferLeadership. Every
// message serialises to a tagged envelope so the transport layer can stay
// payload-agnostic.

#ifndef MYRAFT_WIRE_MESSAGES_H_
#define MYRAFT_WIRE_MESSAGES_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "util/result.h"
#include "wire/log_entry.h"
#include "wire/types.h"

namespace myraft {

enum class MessageType : uint8_t {
  kAppendEntriesRequest = 0,
  kAppendEntriesResponse = 1,
  kVoteRequest = 2,
  kVoteResponse = 3,
  kStartElectionRequest = 4,
};

/// Log replication / heartbeat RPC. Also the vehicle for the commit
/// marker (§3.4: "Raft will piggyback the commit marker ... to followers
/// in the next AppendEntries RPC").
struct AppendEntriesRequest {
  MemberId leader;           // logical sender (always the leader)
  MemberId dest;             // final destination member
  std::vector<MemberId> route;  // remaining relay hops; empty = direct
  uint64_t term = 0;
  OpId prev;                 // entry immediately preceding entries[0]
  OpId commit_marker;        // leader's consensus-commit watermark
  std::vector<LogEntry> entries;
  /// §4.2: PROXY_OP — entries carry OpId/type/checksum but no payload; the
  /// final relay hop reconstitutes payloads from its own log.
  bool proxy_payload_omitted = false;
  /// Entry payloads are LzCompress'd on the wire; checksums always cover
  /// the uncompressed bytes, so receivers inflate before verifying.
  bool entries_compressed = false;
  /// Causal trace context (util/trace): id of the client trace this batch
  /// belongs to and the leader-side batch span to parent follower spans
  /// under. Encoded as optional trailing varints — absent on the wire when
  /// zero, so pre-tracing encoders decode unchanged.
  uint64_t trace_id = 0;
  uint64_t trace_span_id = 0;
  /// Leader-lease grant request (LeaseGuard, DESIGN.md §13): the leader
  /// asks the follower to promise not to grant votes deposing it for
  /// `lease_duration_micros` after receipt (0 = leases off, no promise
  /// requested). `lease_sent_micros` is the leader's local send
  /// timestamp, echoed back verbatim in the response: lease-expiry
  /// arithmetic stays on the leader's clock, and the echo doubles as the
  /// ReadIndex freshness proof. A second optional trailing varint group
  /// after the trace pair. Wire compatibility (§13.6): pre-lease decoders
  /// reject ANY trailing bytes, so these fields are stamped only when
  /// `enable_leader_leases` is on — which therefore requires a fully
  /// upgraded cluster. With leases off the encoding is byte-identical to
  /// the pre-lease format and linearizable reads use the commit-barrier
  /// fallback instead of the echo.
  uint64_t lease_duration_micros = 0;
  uint64_t lease_sent_micros = 0;
  /// Logless reconfiguration (DESIGN.md §15): the leader's current
  /// MembershipConfig, encoded with EncodeMembershipConfig, carried on
  /// every AppendEntries so config propagation is decoupled from log
  /// replication. A third optional trailing group after the lease pair;
  /// absent (empty) when `enable_logless_reconfig` is off, so
  /// logless-off traffic stays byte-identical to the pre-reconfig
  /// format (same fully-upgraded-cluster discipline as leases, §13.6).
  std::string config_payload;

  bool operator==(const AppendEntriesRequest&) const = default;

  bool IsHeartbeat() const { return entries.empty(); }

  void EncodeTo(std::string* dst) const;
  static Result<AppendEntriesRequest> DecodeFrom(Slice input);

  /// Total payload bytes (the dominant bandwidth term for accounting).
  uint64_t PayloadBytes() const;
};

struct AppendEntriesResponse {
  MemberId from;             // the follower that acked
  MemberId dest;             // the leader
  std::vector<MemberId> route;  // relay hops back to the leader
  uint64_t term = 0;
  bool success = false;
  /// On success: last log entry now present on the follower (its "vote"
  /// watermark). On failure: hint for the leader to rewind.
  OpId last_received;
  uint64_t last_durable_index = 0;
  /// Echo of the request's prev.index. Identifies WHICH batch a rejection
  /// refuses, so the leader can tell a live rejection from a reordered one
  /// that arrived after the batch already succeeded on retry (the tail
  /// hint alone cannot: an ack overtaking the rejection makes a live
  /// rejection look stale and stalls the window until the RPC timeout).
  uint64_t request_prev_index = 0;
  /// Echo of the request's trace context (optional trailing varints; see
  /// AppendEntriesRequest) so acks stitch back to the batch span.
  uint64_t trace_id = 0;
  uint64_t trace_span_id = 0;
  /// Echo of the request's `lease_sent_micros` from a voter (0 from
  /// non-voters, pre-lease followers, and whenever the request carried no
  /// stamp): proves to the leader how fresh this ack is (ReadIndex), and —
  /// when the request carried a duration — records the lease grant.
  /// Optional trailing varint, same compatibility scheme as the request:
  /// absent when zero, so leases-off traffic stays pre-lease-decodable.
  uint64_t lease_granted_micros = 0;
  /// Logless reconfiguration: the (config_term, config_version) identity
  /// of the follower's installed config after processing the request —
  /// the leader's per-peer config-ack state that drives the install
  /// (config-commit) quorum. Optional trailing varint pair, present only
  /// when the follower runs with logless reconfig enabled.
  uint64_t config_term = 0;
  uint64_t config_version = 0;

  bool operator==(const AppendEntriesResponse&) const = default;

  void EncodeTo(std::string* dst) const;
  static Result<AppendEntriesResponse> DecodeFrom(Slice input);
};

/// Election RPC; covers regular votes, pre-votes and mock elections.
struct VoteRequest {
  MemberId candidate;
  MemberId dest;
  /// Term the candidate is campaigning in. For pre/mock elections this is
  /// current_term + 1 but the candidate has not actually incremented.
  uint64_t term = 0;
  OpId last_log;             // candidate's last log entry
  RegionId candidate_region;
  bool pre_vote = false;
  /// §4.3 Mock Election: a simulated pre-check run before
  /// TransferLeadership, carrying the current leader's cursor snapshot.
  /// Voting rules additionally reject lagging same-region voters.
  bool mock_election = false;
  OpId leader_cursor_snapshot;
  /// Logless reconfiguration: the candidate's config identity. Voters
  /// deny candidates whose config is older than their own ("stale-
  /// config") so a leader cannot be elected on a superseded member set.
  /// Optional trailing varint pair, absent when logless reconfig is off.
  uint64_t config_term = 0;
  uint64_t config_version = 0;

  bool operator==(const VoteRequest&) const = default;

  void EncodeTo(std::string* dst) const;
  static Result<VoteRequest> DecodeFrom(Slice input);
};

struct VoteResponse {
  MemberId from;
  MemberId dest;
  uint64_t term = 0;
  bool granted = false;
  bool pre_vote = false;
  bool mock_election = false;
  /// Diagnostic reason when not granted ("already-voted", "stale-log",
  /// "lagging-same-region", ...).
  std::string reason;
  RegionId voter_region;
  /// FlexiRaft (§4.1): each voter reports its last-known-leader view;
  /// candidates aggregate these (from grants AND denials) to compute the
  /// election quorum that intersects the most recent data quorum. Without
  /// this, a candidate starved of the current leader's traffic could win
  /// with a stale, too-small quorum and truncate committed entries.
  uint64_t last_leader_term = 0;
  RegionId last_leader_region;

  bool operator==(const VoteResponse&) const = default;

  void EncodeTo(std::string* dst) const;
  static Result<VoteResponse> DecodeFrom(Slice input);
};

/// Leader → target. With `mock` unset: begin a real election immediately
/// (the final "TimeoutNow" step of graceful TransferLeadership). With
/// `mock` set: run a Mock Election round (§4.3) using the leader's cursor
/// snapshot and report the outcome back to `from`.
struct StartElectionRequest {
  MemberId from;
  MemberId dest;
  uint64_t term = 0;  // current leader term; target campaigns at term+1
  bool mock = false;
  OpId leader_cursor_snapshot;

  bool operator==(const StartElectionRequest&) const = default;

  void EncodeTo(std::string* dst) const;
  static Result<StartElectionRequest> DecodeFrom(Slice input);
};

/// Any wire message.
using Message =
    std::variant<AppendEntriesRequest, AppendEntriesResponse, VoteRequest,
                 VoteResponse, StartElectionRequest>;

/// Tagged envelope: 1 type byte + message body.
void EncodeMessage(const Message& msg, std::string* dst);
Result<Message> DecodeMessage(Slice input);

/// Routing helpers used by the transport and the proxy layer.
MemberId MessageDest(const Message& msg);
MemberId MessageFrom(const Message& msg);
/// Physical next hop: the first relay on the route if any, otherwise the
/// final destination. Transports deliver to this member.
MemberId MessageNextHop(const Message& msg);
uint64_t MessageWireBytes(const Message& msg);

}  // namespace myraft

#endif  // MYRAFT_WIRE_MESSAGES_H_

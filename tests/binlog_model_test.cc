// Model-based property test for BinlogManager: a random sequence of
// appends, replicated rotations, truncations, purges and reopens is
// checked against a trivial in-memory reference model after every step.
//
// Invariants:
//   M1  ReadEntry(i) equals the model's entry for every live index;
//   M2  FirstIndex/LastIndex/LastOpId match the model;
//   M3  gtids_in_log == all transaction GTIDs ever appended minus those
//       truncated (purging never removes GTID history, §A.1);
//   M4  a reopen (crash recovery) changes nothing.

#include <gtest/gtest.h>

#include <map>

#include "binlog/binlog_manager.h"
#include "util/random.h"

namespace myraft::binlog {
namespace {

class BinlogModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BinlogModelTest, RandomOpsMatchReferenceModel) {
  Random rng(GetParam());
  auto env = NewMemEnv();
  ManualClock clock;
  BinlogManagerOptions options;
  options.dir = "/log";
  options.clock = &clock;
  auto opened = BinlogManager::Open(env.get(), options);
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<BinlogManager> manager = std::move(*opened);

  std::map<uint64_t, LogEntry> model;  // live entries by index
  GtidSet model_gtids;                 // appended minus truncated
  uint64_t term = 1;
  uint64_t txn_no = 1;

  auto make_entry = [&](uint64_t index) {
    const uint64_t kind = rng.Uniform(10);
    const OpId opid{term, index};
    if (kind < 6) {
      TransactionPayloadBuilder builder;
      RowOperation op;
      op.kind = RowOperation::Kind::kInsert;
      op.database = "d";
      op.table = "t";
      op.after_image =
          "k" + std::to_string(rng.Uniform(100)) + "=" +
          std::string(rng.Uniform(300), 'v');
      builder.AddOperation(std::move(op));
      const Gtid gtid{Uuid::FromIndex(1 + rng.Uniform(3)), txn_no++};
      return std::make_pair(
          LogEntry::Make(opid, EntryType::kTransaction,
                         builder.Finalize(gtid, opid, index,
                                          clock.NowMicros(), 1)),
          std::optional<Gtid>(gtid));
    }
    if (kind < 8) {
      return std::make_pair(LogEntry::Make(opid, EntryType::kNoOp, ""),
                            std::optional<Gtid>());
    }
    if (kind == 8) {
      return std::make_pair(LogEntry::Make(opid, EntryType::kRotate, ""),
                            std::optional<Gtid>());
    }
    MembershipConfig config;
    config.config_index = index;
    config.members.push_back(
        MemberInfo{"m" + std::to_string(rng.Uniform(5)), "r0",
                   MemberKind::kMySql, RaftMemberType::kVoter});
    std::string payload;
    EncodeMembershipConfig(config, &payload);
    return std::make_pair(
        LogEntry::Make(opid, EntryType::kConfigChange, std::move(payload)),
        std::optional<Gtid>());
  };

  auto check_invariants = [&]() {
    // M2.
    if (model.empty()) {
      ASSERT_EQ(manager->FirstIndex(), 0u);
      ASSERT_EQ(manager->LastIndex(), 0u);
    } else {
      ASSERT_EQ(manager->FirstIndex(), model.begin()->first);
      ASSERT_EQ(manager->LastIndex(), model.rbegin()->first);
      ASSERT_EQ(manager->LastOpId(), model.rbegin()->second.id);
    }
    // M1: spot-check up to 10 random live indexes (full scan every step
    // would be quadratic) plus the boundaries.
    if (!model.empty()) {
      std::vector<uint64_t> indexes{model.begin()->first,
                                    model.rbegin()->first};
      for (int i = 0; i < 8; ++i) {
        const uint64_t span =
            model.rbegin()->first - model.begin()->first + 1;
        indexes.push_back(model.begin()->first + rng.Uniform(span));
      }
      for (uint64_t index : indexes) {
        auto it = model.find(index);
        auto read = manager->ReadEntry(index);
        if (it == model.end()) {
          ASSERT_FALSE(read.ok()) << "phantom entry at " << index;
        } else {
          ASSERT_TRUE(read.ok()) << "missing entry at " << index << ": "
                                 << read.status();
          ASSERT_EQ(*read, it->second) << "mismatch at " << index;
        }
      }
    }
    // M3.
    ASSERT_EQ(manager->gtids_in_log(), model_gtids);
  };

  clock.SetMicros(1);
  for (int step = 0; step < 120; ++step) {
    clock.AdvanceMicros(1000);
    const uint64_t action = rng.Uniform(10);
    if (action < 6 || model.empty()) {
      // Append 1-5 entries.
      const int n = 1 + static_cast<int>(rng.Uniform(5));
      for (int i = 0; i < n; ++i) {
        const uint64_t index =
            model.empty() ? manager->LastIndex() + 1
                          : model.rbegin()->first + 1;
        auto [entry, gtid] = make_entry(index == 0 ? 1 : index);
        ASSERT_TRUE(manager->AppendEntry(entry).ok());
        model[entry.id.index] = entry;
        if (gtid.has_value()) model_gtids.Add(*gtid);
      }
      if (rng.OneIn(3)) ++term;  // later appends at a higher term
    } else if (action < 7) {
      // Truncate a random suffix.
      if (model.empty()) continue;
      const uint64_t first = model.begin()->first;
      const uint64_t last = model.rbegin()->first;
      const uint64_t cut = first - 1 + rng.Uniform(last - first + 2);
      auto removed = manager->TruncateAfter(cut);
      ASSERT_TRUE(removed.ok()) << removed.status();
      GtidSet expected_removed;
      for (auto it = model.upper_bound(cut); it != model.end();) {
        if (it->second.type == EntryType::kTransaction) {
          auto txn = ParseTransactionPayload(it->second.payload);
          ASSERT_TRUE(txn.ok());
          expected_removed.Add(txn->gtid);
        }
        it = model.erase(it);
      }
      ASSERT_EQ(*removed, expected_removed);
      model_gtids.Subtract(expected_removed);
      // Terms may regress after truncation of a high-term suffix.
      term = model.empty() ? term : model.rbegin()->second.id.term;
    } else if (action < 8) {
      // Purge to a random retained file.
      const auto files = manager->ListLogFiles();
      if (files.size() < 2) continue;
      const std::string keep = files[rng.Uniform(files.size())];
      auto first_surviving = manager->FirstIndexOfFile(keep);
      ASSERT_TRUE(first_surviving.ok());
      ASSERT_TRUE(manager->PurgeLogsTo(keep).ok());
      model.erase(model.begin(), model.lower_bound(*first_surviving));
      // M3: purging does not change GTID history.
    } else {
      // Crash + reopen (M4).
      manager.reset();
      auto reopened = BinlogManager::Open(env.get(), options);
      ASSERT_TRUE(reopened.ok()) << reopened.status();
      manager = std::move(*reopened);
    }
    check_invariants();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BinlogModelTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace myraft::binlog

// Full-stack MySqlServer tests on the simulator: the §3.4/§3.5 commit
// pipeline end to end, promotion/demotion orchestration, admin commands,
// replicated rotation and purge gating, crash-recovery cases of §A.2, and
// leader/follower consistency.

#include "server/mysql_server.h"

#include <gtest/gtest.h>

#include <set>

#include "flexiraft/flexiraft.h"
#include "sim/cluster.h"

namespace myraft::server {
namespace {

using flexiraft::FlexiRaftQuorumEngine;
using flexiraft::QuorumMode;
using sim::ClusterHarness;
using sim::ClusterOptions;
constexpr uint64_t kSecond = 1'000'000;

const raft::QuorumEngine* FlexiEngine() {
  static FlexiRaftQuorumEngine* engine =
      new FlexiRaftQuorumEngine({QuorumMode::kSingleRegionDynamic});
  return engine;
}

ClusterOptions DefaultOptions(uint64_t seed) {
  ClusterOptions options;
  options.seed = seed;
  options.topology.db_regions = 3;
  options.topology.logtailers_per_db = 2;
  options.topology.learners = 1;
  return options;
}

class ServerClusterTest : public ::testing::Test {
 protected:
  void StartCluster(uint64_t seed = 7) {
    harness_ = std::make_unique<ClusterHarness>(DefaultOptions(seed),
                                                FlexiEngine());
    ASSERT_TRUE(harness_->Bootstrap().ok());
    primary_ = harness_->WaitForPrimary(30 * kSecond);
    ASSERT_FALSE(primary_.empty());
  }

  std::unique_ptr<ClusterHarness> harness_;
  MemberId primary_;
};

TEST_F(ServerClusterTest, MetricsSnapshotCoversAllSubsystems) {
  StartCluster();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        harness_->SyncWrite("k" + std::to_string(i), "v").status.ok());
  }
  harness_->loop()->RunFor(2 * kSecond);

  // The primary's registry exposes the instrumented surface: at least 20
  // distinct metrics spanning the raft, log_cache, server, binlog and
  // proxy subsystems.
  auto* registry = harness_->node(primary_)->metrics();
  const std::vector<std::string> names = registry->Names();
  EXPECT_GE(names.size(), 20u);
  std::set<std::string> prefixes;
  for (const std::string& name : names) {
    prefixes.insert(name.substr(0, name.find('.')));
  }
  EXPECT_GE(prefixes.size(), 4u);
  for (const char* subsystem :
       {"raft", "log_cache", "server", "binlog", "proxy"}) {
    EXPECT_TRUE(prefixes.count(subsystem) > 0) << subsystem;
  }

  // Hot-path counters moved and the per-stage latency histograms saw
  // every commit.
  EXPECT_GT(registry->FindCounter("server.writes_committed")->value(), 0u);
  EXPECT_GT(registry->FindCounter("raft.entries_replicated")->value(), 0u);
  EXPECT_GT(registry->FindCounter("binlog.entries_appended")->value(), 0u);
  const auto* consensus_wait =
      registry->FindHistogram("server.commit_stage_consensus_wait_us");
  ASSERT_NE(consensus_wait, nullptr);
  EXPECT_GE(consensus_wait->snapshot().count(), 20u);

  // Cluster-wide snapshots name every member in both formats.
  const std::string json = harness_->MetricsSnapshotJson();
  for (const MemberId& id : harness_->ids()) {
    EXPECT_NE(json.find("\"" + id + "\":{"), std::string::npos) << id;
  }
  const std::string text = harness_->MetricsSnapshotText();
  EXPECT_NE(text.find(primary_ + ".server.writes_committed counter"),
            std::string::npos);
}

TEST_F(ServerClusterTest, WriteCommitReadRoundTrip) {
  StartCluster();
  auto result = harness_->SyncWrite("user:1", "alice");
  ASSERT_TRUE(result.status.ok()) << result.status;
  EXPECT_GT(result.latency_micros, 0u);

  auto* primary = harness_->node(primary_)->server();
  EXPECT_EQ(primary->Read("bench.kv", "user:1"), "user:1=alice");
  EXPECT_EQ(primary->db_role(), DbRole::kPrimary);
  EXPECT_TRUE(primary->writes_enabled());
  EXPECT_EQ(primary->stats().writes_committed, 1u);
}

TEST_F(ServerClusterTest, BackToBackQuorumReadsServeAtBarrierIndexes) {
  // Leases-off linearizable reads replicate a no-op barrier (§13.2), so
  // a second read registers with the commit marker sitting ON a barrier
  // no-op. The primary's applied view must cover that index even though
  // no-ops never touch the engine — a read gated there parked forever
  // until the primary applied floor tracked the retired marker prefix.
  StartCluster();
  ASSERT_TRUE(harness_->SyncWrite("user:1", "alice").status.ok());

  for (int i = 0; i < 3; ++i) {
    const auto read = harness_->SyncRead("user:1", {}, 2 * kSecond);
    ASSERT_TRUE(read.status.ok()) << "read " << i << ": " << read.status;
    EXPECT_EQ(read.value, "user:1=alice") << "read " << i;
    EXPECT_FALSE(read.served_by_lease);
  }
  auto* primary = harness_->node(primary_)->server();
  EXPECT_EQ(primary->consensus()->stats().reads_quorum, 3u);
}

TEST_F(ServerClusterTest, ReplicationReachesFollowersAndLearners) {
  StartCluster();
  for (int i = 0; i < 20; ++i) {
    auto result = harness_->SyncWrite("k" + std::to_string(i), "v");
    ASSERT_TRUE(result.status.ok());
  }
  harness_->loop()->RunFor(5 * kSecond);

  for (const MemberId& id : harness_->ids()) {
    MySqlServer* server = harness_->node(id)->server();
    if (server->engine() == nullptr) continue;  // logtailer
    EXPECT_EQ(server->Read("bench.kv", "k19"), "k19=v") << id;
    if (id != primary_) {
      EXPECT_EQ(server->db_role(), DbRole::kReplica) << id;
      EXPECT_FALSE(server->writes_enabled()) << id;
      EXPECT_GT(server->stats().applier_transactions_applied, 0u) << id;
    }
  }
  EXPECT_TRUE(harness_->CheckReplicaConsistency());
}

TEST_F(ServerClusterTest, WritesRejectedOnReplicasAndLogtailers) {
  StartCluster();
  for (const MemberId& id : harness_->ids()) {
    if (id == primary_) continue;
    auto result = harness_->SyncWrite("k", "v", 2 * kSecond);
    // Routed to the primary via discovery: succeeds.
    ASSERT_TRUE(result.status.ok());
    break;
  }
  // Direct submission to a replica fails read-only.
  for (const MemberId& id : harness_->database_ids()) {
    if (id == primary_) continue;
    bool called = false;
    binlog::RowOperation op;
    op.kind = binlog::RowOperation::Kind::kInsert;
    op.database = "bench";
    op.table = "kv";
    op.after_image = "x=y";
    harness_->node(id)->server()->SubmitWrite(
        {op}, [&](const WriteResult& r) {
          called = true;
          EXPECT_TRUE(r.status.IsServiceUnavailable());
        });
    EXPECT_TRUE(called);
    break;
  }
  // Logtailers refuse outright.
  for (const auto& member : harness_->config().members) {
    if (member.kind != MemberKind::kLogtailer) continue;
    bool called = false;
    harness_->node(member.id)->server()->SubmitWrite(
        {}, [&](const WriteResult& r) {
          called = true;
          EXPECT_TRUE(r.status.IsNotSupported());
        });
    EXPECT_TRUE(called);
    break;
  }
}

TEST_F(ServerClusterTest, FailoverPromotesNewPrimaryAndClientsResume) {
  StartCluster();
  ASSERT_TRUE(harness_->SyncWrite("pre", "crash").status.ok());

  auto downtime = harness_->MeasureWriteDowntime(
      [this]() { harness_->Crash(primary_); });
  ASSERT_TRUE(downtime.recovered);
  // ~1.5 s detection (3 x 500 ms heartbeats) + election + promotion; the
  // paper reports ~2 s averages (Table 2).
  EXPECT_GT(downtime.downtime_micros, 1'000'000u);
  EXPECT_LT(downtime.downtime_micros, 15'000'000u);

  const MemberId new_primary = harness_->CurrentPrimary();
  ASSERT_FALSE(new_primary.empty());
  EXPECT_NE(new_primary, primary_);
  // Committed data survived.
  harness_->loop()->RunFor(2 * kSecond);
  EXPECT_EQ(harness_->node(new_primary)->server()->Read("bench.kv", "pre"),
            "pre=crash");
}

TEST_F(ServerClusterTest, GracefulPromotionIsFast) {
  StartCluster();
  ASSERT_TRUE(harness_->SyncWrite("warm", "up").status.ok());
  // Let the whole ring catch up: a transfer against a lagging target
  // region is (correctly) refused by the mock election (§4.3).
  harness_->loop()->RunFor(2 * kSecond);
  MemberId target;
  for (const MemberId& id : harness_->database_ids()) {
    if (id != primary_) {
      target = id;
      break;
    }
  }
  auto downtime = harness_->MeasureWriteDowntime([&]() {
    ASSERT_TRUE(
        harness_->node(primary_)->server()->TransferLeadership(target).ok());
  });
  ASSERT_TRUE(downtime.recovered);
  // Graceful promotion: no failure detection involved; the paper reports
  // ~200 ms averages (Table 2).
  EXPECT_LT(downtime.downtime_micros, 2'000'000u);
  harness_->loop()->RunFor(2 * kSecond);
  EXPECT_EQ(harness_->CurrentPrimary(), target);
  EXPECT_EQ(harness_->node(primary_)->server()->db_role(), DbRole::kReplica);
  EXPECT_EQ(harness_->node(primary_)->server()->stats().demotions, 1u);
}

TEST_F(ServerClusterTest, ErstwhileLeaderRejoinsConsistent) {
  // §A.2 case 2: entries written to the old primary's binlog but never
  // replicated are truncated when it rejoins; GTID metadata follows.
  StartCluster();
  ASSERT_TRUE(harness_->SyncWrite("durable", "yes").status.ok());

  // Isolate the primary, then send writes that will sit in its binlog
  // without reaching consensus.
  for (const MemberId& id : harness_->ids()) {
    if (id != primary_) harness_->network()->SetLinkCut(primary_, id, true);
  }
  std::vector<ClusterHarness::ClientWriteResult> lost_results;
  for (int i = 0; i < 3; ++i) {
    harness_->ClientWrite(
        "lost" + std::to_string(i), "v",
        [&](const ClusterHarness::ClientWriteResult& r) {
          lost_results.push_back(r);
        });
  }
  harness_->loop()->RunFor(1 * kSecond);
  harness_->Crash(primary_);
  for (const MemberId& id : harness_->ids()) {
    if (id != primary_) harness_->network()->SetLinkCut(primary_, id, false);
  }

  // New primary emerges; old one restarts and rejoins.
  MemberId new_primary;
  const uint64_t deadline = harness_->loop()->now() + 60 * kSecond;
  while (harness_->loop()->now() < deadline) {
    harness_->loop()->RunFor(kSecond);
    new_primary = harness_->CurrentPrimary();
    if (!new_primary.empty() && new_primary != primary_) break;
  }
  ASSERT_FALSE(new_primary.empty());
  ASSERT_TRUE(harness_->SyncWrite("new-era", "v").status.ok());
  ASSERT_TRUE(harness_->Restart(primary_).ok());
  harness_->loop()->RunFor(10 * kSecond);

  // The lost writes never committed; clients saw timeout/abort.
  ASSERT_EQ(lost_results.size(), 3u);
  for (const auto& r : lost_results) {
    EXPECT_FALSE(r.status.ok());
  }
  // The rejoined node's engine must not contain the lost rows.
  MySqlServer* rejoined = harness_->node(primary_)->server();
  EXPECT_EQ(rejoined->db_role(), DbRole::kReplica);
  EXPECT_EQ(rejoined->Read("bench.kv", "lost0"), std::nullopt);
  EXPECT_EQ(rejoined->Read("bench.kv", "new-era"), "new-era=v");
  EXPECT_TRUE(harness_->CheckReplicaConsistency());
}

TEST_F(ServerClusterTest, CrashAfterReplicationReappliesTransaction) {
  // §A.2 case 3: the transaction reached other members; the erstwhile
  // leader crashes before engine commit; after recovery the transaction
  // is re-applied from the log by the applier.
  StartCluster();
  // Stop commits from completing on the primary by cutting ONLY the
  // in-region logtailer acks after the entries ship? Simpler determinism:
  // crash the primary immediately after submitting writes, before the
  // event loop advances time.
  std::vector<Status> outcomes;
  for (int i = 0; i < 2; ++i) {
    binlog::RowOperation op;
    op.kind = binlog::RowOperation::Kind::kInsert;
    op.database = "bench";
    op.table = "kv";
    op.after_image = StringPrintf("inflight%d=v", i);
    harness_->node(primary_)->server()->SubmitWrite(
        {op}, [&](const WriteResult& r) { outcomes.push_back(r.status); });
  }
  // Entries are in the primary's binlog and on the wire; the engine has
  // them prepared only. Let the network deliver to followers, then crash
  // the primary before it can process acks. With pipelined replication
  // both batches ship immediately, so the window must close before the
  // earliest possible ack: one-way delivery is 150-250us in-region, so
  // everything is delivered by 250us and no ack lands before 300us.
  harness_->loop()->RunFor(270);  // > max delivery, < min RTT
  harness_->Crash(primary_);

  const uint64_t deadline = harness_->loop()->now() + 60 * kSecond;
  MemberId new_primary;
  while (harness_->loop()->now() < deadline) {
    harness_->loop()->RunFor(kSecond);
    new_primary = harness_->CurrentPrimary();
    if (!new_primary.empty() && new_primary != primary_) break;
  }
  ASSERT_FALSE(new_primary.empty());
  harness_->loop()->RunFor(5 * kSecond);

  // The in-flight transactions reached the ring and commit under the new
  // leader; the applier applies them on every replica.
  EXPECT_EQ(harness_->node(new_primary)->server()->Read("bench.kv",
                                                        "inflight0"),
            "inflight0=v");

  // The crashed primary restarts: prepared txns roll back, the applier
  // re-applies from the relay log (case 3's "reapplied again from
  // scratch").
  ASSERT_TRUE(harness_->Restart(primary_).ok());
  harness_->loop()->RunFor(10 * kSecond);
  MySqlServer* rejoined = harness_->node(primary_)->server();
  EXPECT_GT(rejoined->engine()->RolledBackAtRecovery().size(), 0u);
  EXPECT_EQ(rejoined->Read("bench.kv", "inflight0"), "inflight0=v");
  EXPECT_EQ(rejoined->Read("bench.kv", "inflight1"), "inflight1=v");
  EXPECT_TRUE(harness_->CheckReplicaConsistency());
}

TEST_F(ServerClusterTest, AdminCommandsReflectState) {
  StartCluster();
  ASSERT_TRUE(harness_->SyncWrite("a", "1").status.ok());
  MySqlServer* primary = harness_->node(primary_)->server();

  const MasterStatus master = primary->ShowMasterStatus();
  EXPECT_TRUE(HasPrefix(master.file, "binlog."));  // rewired on promotion
  EXPECT_GT(master.position, 0u);
  EXPECT_FALSE(master.executed_gtid_set.empty());

  const auto logs = primary->ShowBinaryLogs();
  ASSERT_GE(logs.size(), 1u);
  EXPECT_GT(logs.back().size, 0u);

  // Replica status on a follower (let heartbeats propagate the current
  // leader first — the follower may still remember a short-lived interim
  // leader from bootstrap).
  harness_->loop()->RunFor(3 * kSecond);
  for (const MemberId& id : harness_->database_ids()) {
    if (id == primary_) continue;
    const ReplicaStatus replica =
        harness_->node(id)->server()->ShowReplicaStatus();
    EXPECT_TRUE(replica.applier_running);
    EXPECT_EQ(replica.primary, primary_);
    break;
  }

  // SHOW BINLOG EVENTS walks the event stream of a file.
  auto events = primary->ShowBinlogEvents(logs.front().name);
  ASSERT_TRUE(events.ok()) << events.status();
  ASSERT_GE(events->size(), 2u);
  EXPECT_EQ((*events)[0].type, binlog::EventType::kFormatDescription);
  EXPECT_EQ((*events)[1].type, binlog::EventType::kPreviousGtids);
  EXPECT_FALSE(primary->ShowBinlogEvents("binlog.999999").ok());

  // Legacy replication commands are Raft-managed now (§3).
  EXPECT_TRUE(primary->ChangeMasterTo().IsNotSupported());
  EXPECT_TRUE(primary->ResetMaster().IsNotSupported());
  EXPECT_TRUE(primary->ResetReplica().IsNotSupported());
}

TEST_F(ServerClusterTest, ReplicatedRotationAndGatedPurge) {
  StartCluster();
  MySqlServer* primary = harness_->node(primary_)->server();
  ASSERT_TRUE(harness_->SyncWrite("r1", "v").status.ok());

  // FLUSH BINARY LOGS rotates via a replicated rotate event (§A.1). File
  // counts are member-local (persona switches rotate locally too), so
  // assert on growth per member.
  std::map<MemberId, size_t> files_before;
  for (const MemberId& id : harness_->database_ids()) {
    files_before[id] = harness_->node(id)->server()->ShowBinaryLogs().size();
  }
  ASSERT_TRUE(primary->FlushBinaryLogs().ok());
  ASSERT_TRUE(harness_->SyncWrite("r2", "v").status.ok());
  harness_->loop()->RunFor(3 * kSecond);
  const auto files_after = primary->ShowBinaryLogs();
  EXPECT_EQ(files_after.size(), files_before[primary_] + 1);

  // Followers rotated too (the rotate entry is replicated).
  for (const MemberId& id : harness_->database_ids()) {
    EXPECT_EQ(harness_->node(id)->server()->ShowBinaryLogs().size(),
              files_before[id] + 1)
        << id;
  }

  // FLUSH on a replica is rejected.
  for (const MemberId& id : harness_->database_ids()) {
    if (id == primary_) continue;
    EXPECT_FALSE(harness_->node(id)->server()->FlushBinaryLogs().ok());
    break;
  }

  // Purge up to the newest file: allowed once everyone has replicated.
  const std::string newest = files_after.back().name;
  ASSERT_TRUE(primary->PurgeLogsTo(newest).ok());
  EXPECT_EQ(primary->ShowBinaryLogs().size(), 1u);

  // Purge is refused while a member lags (§A.1 watermarks).
  MemberId laggard;
  for (const MemberId& id : harness_->ids()) {
    if (id != primary_) {
      laggard = id;
      break;
    }
  }
  harness_->network()->SetLinkCut(primary_, laggard, true);
  ASSERT_TRUE(harness_->SyncWrite("r3", "v").status.ok());
  ASSERT_TRUE(primary->FlushBinaryLogs().ok());
  ASSERT_TRUE(harness_->SyncWrite("r4", "v").status.ok());
  harness_->loop()->RunFor(kSecond);
  const std::string latest = primary->ShowBinaryLogs().back().name;
  EXPECT_FALSE(primary->PurgeLogsTo(latest).ok());
  harness_->network()->SetLinkCut(primary_, laggard, false);
}

TEST_F(ServerClusterTest, RowConflictsAreRejectedWhilePipelined) {
  StartCluster();
  // Two writes to the same key in the same pipeline window: the second
  // hits the first's row lock (held until engine commit, §3.4).
  MySqlServer* primary = harness_->node(primary_)->server();
  std::vector<Status> results;
  binlog::RowOperation op;
  op.kind = binlog::RowOperation::Kind::kInsert;
  op.database = "bench";
  op.table = "kv";
  op.after_image = "hot=1";
  primary->SubmitWrite({op}, [&](const WriteResult& r) {
    results.push_back(r.status);
  });
  op.after_image = "hot=2";
  primary->SubmitWrite({op}, [&](const WriteResult& r) {
    results.push_back(r.status);
  });
  harness_->loop()->RunFor(2 * kSecond);
  ASSERT_EQ(results.size(), 2u);
  // Second failed on the lock; the first committed and released it.
  EXPECT_TRUE(results[1].ok());   // callbacks fire in completion order:
  EXPECT_FALSE(results[0].ok());  // conflict returns synchronously first
  EXPECT_EQ(primary->stats().writes_rejected_conflict, 1u);
  // Lock released after commit: a retry succeeds.
  auto retry = harness_->SyncWrite("hot", "3");
  EXPECT_TRUE(retry.status.ok());
}

TEST_F(ServerClusterTest, WitnessLeaderHandsOffToDatabase) {
  // Crash the primary while its in-region logtailers are ahead of the
  // other databases: a logtailer may win and must hand off (§2.2). This
  // runs the full server-level handoff (not just raft).
  StartCluster(21);
  ASSERT_TRUE(harness_->SyncWrite("w", "1").status.ok());
  // Lag all other databases.
  for (const MemberId& id : harness_->database_ids()) {
    if (id != primary_) harness_->network()->SetLinkCut(primary_, id, true);
  }
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(harness_->SyncWrite("w" + std::to_string(i), "v").status.ok());
  }
  harness_->Crash(primary_);
  for (const MemberId& id : harness_->database_ids()) {
    if (id != primary_) harness_->network()->SetLinkCut(primary_, id, false);
  }

  const uint64_t deadline = harness_->loop()->now() + 90 * kSecond;
  MemberId new_primary;
  while (harness_->loop()->now() < deadline) {
    harness_->loop()->RunFor(kSecond);
    new_primary = harness_->CurrentPrimary();
    if (!new_primary.empty() && new_primary != primary_) break;
  }
  ASSERT_FALSE(new_primary.empty());
  // The final primary is a database, never a logtailer.
  EXPECT_EQ(harness_->node(new_primary)->server()->options().kind,
            MemberKind::kMySql);
  // All committed-before-crash writes survived.
  harness_->loop()->RunFor(5 * kSecond);
  EXPECT_EQ(harness_->node(new_primary)->server()->Read("bench.kv", "w4"),
            "w4=v");
}

TEST(ServerCheckpointTest, WalBoundedByPeriodicCheckpoints) {
  // Tiny checkpoint threshold: a steady write stream must trigger engine
  // checkpoints on the primary AND on replicas (applier writes WAL too),
  // and crash recovery after a checkpoint still yields identical state.
  ClusterOptions options = DefaultOptions(91);
  options.engine_checkpoint_wal_bytes = 2'000;  // tiny: checkpoint often
  ClusterHarness harness(options, FlexiEngine());
  ASSERT_TRUE(harness.Bootstrap().ok());
  const MemberId primary = harness.WaitForPrimary(30 * kSecond);
  ASSERT_FALSE(primary.empty());

  MySqlServer* server = harness.node(primary)->server();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(harness.SyncWrite("c" + std::to_string(i), "v").status.ok());
  }
  harness.loop()->RunFor(2 * kSecond);
  // The Tick-driven checkpointer fired and kept the WAL bounded, on the
  // primary and on replicas alike.
  EXPECT_GT(server->stats().engine_checkpoints, 0u);
  EXPECT_LT(server->engine()->WalSizeBytes(), 10'000u);
  for (const MemberId& id : harness.database_ids()) {
    EXPECT_GT(harness.node(id)->server()->stats().engine_checkpoints, 0u)
        << id;
  }

  // Crash + restart: recovery loads the snapshot and stays consistent.
  harness.Crash(primary);
  ASSERT_TRUE(harness.Restart(primary).ok());
  harness.loop()->RunFor(5 * kSecond);
  EXPECT_EQ(harness.node(primary)->server()->Read("bench.kv", "c49"),
            "c49=v");
  EXPECT_TRUE(harness.CheckReplicaConsistency());
}

}  // namespace
}  // namespace myraft::server

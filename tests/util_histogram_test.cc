// Edge-case tests for the histogram's log-linear bucketing and percentile
// estimation: octave boundaries, the p=100 / single-sample extremes, and
// Merge-then-Percentile round trips. The bulk statistical behaviour is
// covered in util_misc_test.cc; this file pins down the boundary math the
// metrics registry and bench percentile tables depend on.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/histogram.h"
#include "util/random.h"

namespace myraft {
namespace {

TEST(HistogramBucketTest, SmallValuesMapToIdentityBuckets) {
  // The first octave is linear: values below kSubBuckets are their own
  // bucket, with an exact lower bound.
  for (uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    EXPECT_EQ(Histogram::BucketFor(v), static_cast<int>(v));
    EXPECT_EQ(Histogram::BucketLowerBound(static_cast<int>(v)), v);
  }
}

TEST(HistogramBucketTest, OctaveBoundaries) {
  // Each power of two starts a new octave: 2^k lands exactly on a bucket
  // lower bound, and 2^k - 1 lands in the preceding bucket.
  for (int k = Histogram::kSubBucketBits; k < 40; ++k) {
    const uint64_t v = 1ull << k;
    const int bucket = Histogram::BucketFor(v);
    EXPECT_EQ(Histogram::BucketLowerBound(bucket), v) << "k=" << k;
    EXPECT_EQ(Histogram::BucketFor(v - 1), bucket - 1) << "k=" << k;
  }
}

TEST(HistogramBucketTest, LowerBoundRoundTripsThroughBucketFor) {
  for (int b = 0; b < Histogram::kNumBuckets; ++b) {
    EXPECT_EQ(Histogram::BucketFor(Histogram::BucketLowerBound(b)), b)
        << "bucket " << b;
  }
}

TEST(HistogramBucketTest, BucketForIsMonotonic) {
  int prev = -1;
  for (uint64_t v = 0; v < 100'000; v += 37) {
    const int bucket = Histogram::BucketFor(v);
    EXPECT_GE(bucket, prev) << "value " << v;
    prev = bucket;
  }
}

TEST(HistogramBucketTest, HugeValuesClampToLastBucket) {
  EXPECT_EQ(Histogram::BucketFor(UINT64_MAX), Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::BucketFor(1ull << 50), Histogram::kNumBuckets - 1);
}

TEST(HistogramPercentileTest, P100ReturnsMax) {
  Histogram h;
  h.Add(3);
  h.Add(900);
  h.Add(123'456);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 123'456.0);
  // And never above max even with interpolation inside the last bucket.
  for (double p : {99.0, 99.9, 100.0}) {
    EXPECT_LE(h.Percentile(p), 123'456.0) << "p" << p;
  }
}

TEST(HistogramPercentileTest, SingleSampleAtEveryPercentile) {
  Histogram h;
  h.Add(777);
  for (double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(h.Percentile(p), 777.0) << "p" << p;
  }
  EXPECT_EQ(h.min(), 777u);
  EXPECT_EQ(h.max(), 777u);
}

TEST(HistogramPercentileTest, ResultsStayWithinObservedRange) {
  Histogram h;
  Random rng(11);
  for (int i = 0; i < 10'000; ++i) h.Add(500 + rng.Uniform(1'000'000));
  for (double p : {0.0, 10.0, 50.0, 90.0, 99.99, 100.0}) {
    const double v = h.Percentile(p);
    EXPECT_GE(v, static_cast<double>(h.min())) << "p" << p;
    EXPECT_LE(v, static_cast<double>(h.max())) << "p" << p;
  }
}

TEST(HistogramMergeTest, MergeEmptyIsIdentity) {
  Histogram h, empty;
  for (uint64_t v : {5u, 90u, 4'000u}) h.Add(v);
  const double p50_before = h.Percentile(50);
  h.Merge(empty);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.Percentile(50), p50_before);

  // Merging into an empty histogram reproduces the source.
  Histogram target;
  target.Merge(h);
  EXPECT_EQ(target.count(), h.count());
  EXPECT_EQ(target.min(), h.min());
  EXPECT_EQ(target.max(), h.max());
  EXPECT_DOUBLE_EQ(target.Percentile(99), h.Percentile(99));
}

TEST(HistogramMergeTest, MergeThenPercentileMatchesCombinedStream) {
  // Shard one stream across four histograms, merge them back, and check
  // the percentile estimates agree exactly with the unsharded histogram
  // (bucket counts are additive, so they must).
  Histogram shards[4];
  Histogram combined;
  Random rng(23);
  for (int i = 0; i < 20'000; ++i) {
    const uint64_t v = 1 + rng.Uniform(5'000'000);
    shards[i % 4].Add(v);
    combined.Add(v);
  }
  Histogram merged;
  for (const Histogram& shard : shards) merged.Merge(shard);
  EXPECT_EQ(merged.count(), combined.count());
  for (double p : {1.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0}) {
    EXPECT_DOUBLE_EQ(merged.Percentile(p), combined.Percentile(p))
        << "p" << p;
  }
}

TEST(HistogramMergeTest, ClearThenReuse) {
  Histogram h;
  h.Add(1'000'000);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 0.0);
  h.Add(42);
  EXPECT_EQ(h.min(), 42u);
  EXPECT_EQ(h.max(), 42u);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 42.0);
}

TEST(HistogramDeltaTest, DeltaIsTheWindowBetweenSnapshots) {
  // The sampler's windowing primitive: later.Delta(earlier) holds exactly
  // the samples recorded between the two snapshots.
  Histogram earlier;
  for (int i = 0; i < 100; ++i) earlier.Add(1'000);
  Histogram later = earlier;
  for (int i = 0; i < 50; ++i) later.Add(9'000);

  const Histogram window = later.Delta(earlier);
  EXPECT_EQ(window.count(), 50u);
  // Every window sample was 9000: the whole percentile range reads from
  // that one bucket, not from the 1000us samples that predate the window.
  EXPECT_GE(window.Percentile(1), 9'000.0 * 0.9);
  EXPECT_LE(window.Percentile(99), 9'000.0 * 1.1);

  // Delta against an identical snapshot is empty.
  const Histogram empty = later.Delta(later);
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_DOUBLE_EQ(empty.Percentile(50), 0.0);
}

TEST(HistogramDeltaTest, DeltaThenMergeRoundTrips) {
  Histogram earlier;
  Random rng(31);
  for (int i = 0; i < 5'000; ++i) earlier.Add(1 + rng.Uniform(100'000));
  Histogram later = earlier;
  for (int i = 0; i < 5'000; ++i) later.Add(1 + rng.Uniform(100'000));

  // earlier + (later - earlier) == later, bucket for bucket.
  Histogram rebuilt = earlier;
  rebuilt.Merge(later.Delta(earlier));
  EXPECT_EQ(rebuilt.count(), later.count());
  for (double p : {1.0, 50.0, 99.0, 99.9}) {
    EXPECT_DOUBLE_EQ(rebuilt.Percentile(p), later.Percentile(p)) << "p" << p;
  }
}

}  // namespace
}  // namespace myraft

// Backup/restore substrate tests (§3's backup service dependency):
// archive round-trips, restore safety, and the end-to-end provisioning
// flow — a new member joining from a backup after the ring purged its
// old binlog files.

#include "tools/backup.h"

#include <gtest/gtest.h>

#include "flexiraft/flexiraft.h"
#include "sim/cluster.h"

namespace myraft::tools {
namespace {

constexpr uint64_t kSecond = 1'000'000;

const raft::QuorumEngine* FlexiEngine() {
  static auto* engine = new flexiraft::FlexiRaftQuorumEngine(
      {flexiraft::QuorumMode::kSingleRegionDynamic});
  return engine;
}

TEST(BackupTest, ArchiveRoundTripsFiles) {
  auto src = NewMemEnv();
  ManualClock clock;
  clock.SetMicros(777);
  ASSERT_TRUE(src->CreateDirIfMissing("/d").ok());
  ASSERT_TRUE(src->CreateDirIfMissing("/d/log").ok());
  ASSERT_TRUE(src->CreateDirIfMissing("/d/engine").ok());
  ASSERT_TRUE(src->WriteStringToFile("binlog-bytes", "/d/log/binlog.000001").ok());
  ASSERT_TRUE(src->WriteStringToFile("index", "/d/log/log.index").ok());
  ASSERT_TRUE(src->WriteStringToFile("wal-bytes", "/d/engine/engine.wal").ok());

  auto archive = BackupDataDir(src.get(), "/d", &clock);
  ASSERT_TRUE(archive.ok()) << archive.status();
  EXPECT_EQ(archive->files.size(), 3u);
  EXPECT_EQ(archive->taken_at_micros, 777u);
  EXPECT_EQ(archive->total_bytes,
            strlen("binlog-bytes") + strlen("index") + strlen("wal-bytes"));

  auto dst = NewMemEnv();
  ASSERT_TRUE(RestoreDataDir(*archive, dst.get(), "/restored").ok());
  EXPECT_EQ(*dst->ReadFileToString("/restored/log/binlog.000001"),
            "binlog-bytes");
  EXPECT_EQ(*dst->ReadFileToString("/restored/engine/engine.wal"),
            "wal-bytes");

  // Restoring over existing data is refused.
  EXPECT_TRUE(
      RestoreDataDir(*archive, dst.get(), "/restored").IsAlreadyPresent());
}

TEST(BackupTest, EmptySourceIsNotFound) {
  auto env = NewMemEnv();
  ManualClock clock;
  EXPECT_TRUE(BackupDataDir(env.get(), "/nothing", &clock)
                  .status()
                  .IsNotFound());
}

TEST(BackupTest, NewMemberJoinsFromBackupAfterPurge) {
  sim::ClusterOptions options;
  options.seed = 71;
  options.topology.db_regions = 3;
  options.topology.logtailers_per_db = 2;
  sim::ClusterHarness cluster(options, FlexiEngine());
  ASSERT_TRUE(cluster.Bootstrap().ok());
  const MemberId primary = cluster.WaitForPrimary(30 * kSecond);
  ASSERT_FALSE(primary.empty());

  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(cluster.SyncWrite("k" + std::to_string(i), "v").status.ok());
  }
  cluster.loop()->RunFor(3 * kSecond);

  // Rotate, then purge old files on EVERY member (fleet-wide log
  // reclamation): afterwards no member retains the early entries.
  server::MySqlServer* leader = cluster.node(primary)->server();
  ASSERT_TRUE(leader->FlushBinaryLogs().ok());
  ASSERT_TRUE(cluster.SyncWrite("post-rotate", "v").status.ok());
  cluster.loop()->RunFor(3 * kSecond);
  for (const MemberId& id : cluster.ids()) {
    server::MySqlServer* server = cluster.node(id)->server();
    const auto files = server->ShowBinaryLogs();
    ASSERT_GE(files.size(), 2u) << id;
    ASSERT_TRUE(server->PurgeLogsTo(files.back().name).ok()) << id;
    EXPECT_GT(server->binlog_manager()->FirstIndex(), 1u) << id;
  }

  // Take a backup from a quiesced follower (crash = consistent disk).
  MemberId source;
  for (const MemberId& id : cluster.database_ids()) {
    if (id != primary) {
      source = id;
      break;
    }
  }
  cluster.Crash(source);
  auto archive = BackupDataDir(cluster.node(source)->env(), "/" + source,
                               cluster.loop()->clock());
  ASSERT_TRUE(archive.ok()) << archive.status();
  ASSERT_TRUE(cluster.Restart(source).ok());
  cluster.loop()->RunFor(2 * kSecond);

  // Provision the new member from the backup; it joins above the purge
  // horizon and catches the tail from the leader.
  MemberInfo member{"dbrestored", "region1", MemberKind::kMySql,
                    RaftMemberType::kNonVoter};
  ASSERT_TRUE(cluster
                  .AddNewMember(member,
                                [&archive](Env* env, const std::string& dir) {
                                  return RestoreDataDir(*archive, env, dir);
                                })
                  .ok());
  ASSERT_TRUE(cluster.SyncWrite("post-join", "v").status.ok());
  cluster.loop()->RunFor(5 * kSecond);

  server::MySqlServer* joined = cluster.node("dbrestored")->server();
  EXPECT_EQ(joined->Read("bench.kv", "k5"), "k5=v");          // from backup
  EXPECT_EQ(joined->Read("bench.kv", "post-join"), "post-join=v");  // caught up
  EXPECT_GT(joined->binlog_manager()->FirstIndex(), 1u);
  EXPECT_TRUE(cluster.CheckReplicaConsistency());
}

}  // namespace
}  // namespace myraft::tools

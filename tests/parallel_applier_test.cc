// Parallel-applier tests: checksum parity between serial and parallel
// apply on conflicting workloads, dependency/conflict stall accounting,
// and the promotion gate waiting for full applier catch-up. The sim is
// single-threaded; parallelism shows up as overlapping busy windows on
// virtual worker slots (applier_txn_cost_micros > 0).

#include "server/mysql_server.h"

#include <gtest/gtest.h>

#include "flexiraft/flexiraft.h"
#include "sim/cluster.h"

namespace myraft::server {
namespace {

using flexiraft::FlexiRaftQuorumEngine;
using flexiraft::QuorumMode;
using sim::ClusterHarness;
using sim::ClusterOptions;
constexpr uint64_t kSecond = 1'000'000;

const raft::QuorumEngine* FlexiEngine() {
  static FlexiRaftQuorumEngine* engine =
      new FlexiRaftQuorumEngine({QuorumMode::kSingleRegionDynamic});
  return engine;
}

ClusterOptions ApplierOptions(uint64_t seed, uint32_t workers,
                              uint64_t txn_cost_micros) {
  ClusterOptions options;
  options.seed = seed;
  options.topology.db_regions = 3;
  options.topology.logtailers_per_db = 2;
  options.applier_workers = workers;
  options.applier_txn_cost_micros = txn_cost_micros;
  return options;
}

/// Issues a deterministic workload with both kinds of dependency:
/// bursts of concurrent distinct-key writes (overlapping commit
/// intervals -> parallelizable) cycling over a small key space so
/// successive bursts conflict on rows (writeset + interval dependencies).
/// Returns the final value written per key.
std::map<std::string, std::string> RunConflictingWorkload(
    ClusterHarness* harness, int bursts, int burst_width) {
  std::map<std::string, std::string> expect;
  for (int b = 0; b < bursts; ++b) {
    int outstanding = 0;
    bool failed = false;
    std::string fail_reason;
    for (int w = 0; w < burst_width; ++w) {
      // 7 keys cycled by 3-wide bursts: every burst overlaps with its
      // neighbours' rows.
      const std::string key = "k" + std::to_string((b * burst_width + w) % 7);
      const std::string value = "b" + std::to_string(b) + "w" +
                                std::to_string(w);
      ++outstanding;
      harness->ClientWrite(key, value,
                           [&outstanding, &failed, &fail_reason](
                               const ClusterHarness::ClientWriteResult& r) {
                             --outstanding;
                             if (!r.status.ok()) {
                               failed = true;
                               fail_reason = r.status.ToString();
                             }
                           });
      expect[key] = key + "=" + value;
    }
    const uint64_t deadline = harness->loop()->now() + 10 * kSecond;
    while (outstanding > 0 && harness->loop()->now() < deadline) {
      harness->loop()->RunFor(1'000);
    }
    EXPECT_EQ(outstanding, 0);
    EXPECT_FALSE(failed) << "write failed in burst " << b << ": "
                         << fail_reason;
  }
  return expect;
}

/// Runs the loop until every database engine has drained its applier
/// (lag 0 on all up members).
void DrainAppliers(ClusterHarness* harness, uint64_t timeout_micros) {
  const uint64_t deadline = harness->loop()->now() + timeout_micros;
  while (harness->loop()->now() < deadline) {
    bool drained = true;
    for (const MemberId& id : harness->ids()) {
      MySqlServer* server = harness->node(id)->server();
      if (server->engine() == nullptr) continue;
      if (server->ShowReplicaStatus().lag_entries > 0) drained = false;
    }
    if (drained) return;
    harness->loop()->RunFor(10'000);
  }
}

TEST(ParallelApplierTest, ChecksumParityWithSerialOnConflictingWorkload) {
  // Same seed, same workload; only the applier differs. The applier runs
  // on followers, so the primary-side history is identical and the final
  // engine state must match bit for bit: parallel apply may reorder
  // independent transactions but never conflicting ones.
  uint64_t serial_checksum = 0;
  uint64_t parallel_checksum = 0;
  for (const bool parallel : {false, true}) {
    ClusterHarness harness(
        ApplierOptions(21, parallel ? 4 : 1, parallel ? 8'000 : 0),
        FlexiEngine());
    ASSERT_TRUE(harness.Bootstrap().ok());
    const MemberId primary = harness.WaitForPrimary(30 * kSecond);
    ASSERT_FALSE(primary.empty());

    auto expect = RunConflictingWorkload(&harness, /*bursts=*/12,
                                         /*burst_width=*/3);
    DrainAppliers(&harness, 60 * kSecond);
    ASSERT_TRUE(harness.CheckReplicaConsistency());

    // Every engine (primary + followers) converged on the same rows.
    const uint64_t primary_checksum =
        harness.node(primary)->server()->StateChecksum();
    for (const MemberId& id : harness.database_ids()) {
      MySqlServer* server = harness.node(id)->server();
      EXPECT_EQ(server->StateChecksum(), primary_checksum) << id;
      for (const auto& [key, row] : expect) {
        EXPECT_EQ(server->Read("bench.kv", key), row) << id << " " << key;
      }
    }
    (parallel ? parallel_checksum : serial_checksum) = primary_checksum;

    if (parallel) {
      // The followers actually exercised the scheduler: transactions
      // flowed through the window and row/interval dependencies stalled
      // dispatch at least once under the modelled 8ms apply cost.
      uint64_t applied = 0, stalls = 0;
      for (const MemberId& id : harness.database_ids()) {
        if (id == primary) continue;
        const auto stats = harness.node(id)->server()->stats();
        applied += stats.applier_transactions_applied;
        stalls += stats.applier_dependency_stalls +
                  stats.applier_conflict_stalls;
      }
      EXPECT_GT(applied, 0u);
      EXPECT_GT(stalls, 0u);
    }
  }
  EXPECT_EQ(serial_checksum, parallel_checksum);
}

TEST(ParallelApplierTest, PromotionWaitsForApplierCatchUp) {
  // Followers lag by design: 25ms modelled cost per transaction. Crashing
  // the primary mid-stream forces a promotion whose gate must hold writes
  // until the new primary's applier has retired the full committed
  // prefix — otherwise reads on the new primary would miss acknowledged
  // writes.
  ClusterHarness harness(ApplierOptions(33, 2, 25'000), FlexiEngine());
  ASSERT_TRUE(harness.Bootstrap().ok());
  const MemberId old_primary = harness.WaitForPrimary(30 * kSecond);
  ASSERT_FALSE(old_primary.empty());

  std::map<std::string, std::string> expect;
  for (int i = 0; i < 30; ++i) {
    const std::string key = "p" + std::to_string(i);
    auto result = harness.SyncWrite(key, "v" + std::to_string(i));
    ASSERT_TRUE(result.status.ok()) << i << ": " << result.status;
    expect[key] = key + "=v" + std::to_string(i);
  }
  // Followers are still chewing through the backlog (30 txns * 25ms >>
  // the replication delay). Kill the primary now.
  harness.Crash(old_primary);

  const MemberId new_primary = harness.WaitForPrimary(120 * kSecond);
  ASSERT_FALSE(new_primary.empty());
  ASSERT_NE(new_primary, old_primary);

  // writes_enabled implies the promotion gate passed: every acknowledged
  // write is already applied and readable, with zero applier lag.
  MySqlServer* server = harness.node(new_primary)->server();
  ASSERT_TRUE(server->writes_enabled());
  EXPECT_EQ(server->ShowReplicaStatus().lag_entries, 0u);
  for (const auto& [key, row] : expect) {
    EXPECT_EQ(server->Read("bench.kv", key), row) << key;
  }

  // And the ring still accepts writes afterwards.
  EXPECT_TRUE(harness.SyncWrite("after", "failover").status.ok());
}

TEST(ParallelApplierTest, SerialCostFreeApplierStaysSynchronous) {
  // applier_txn_cost_micros = 0 must preserve the pre-parallelism
  // behaviour: no residual lag between pumps, no stalls needed to make
  // progress, every follower applies everything.
  ClusterHarness harness(ApplierOptions(5, 1, 0), FlexiEngine());
  ASSERT_TRUE(harness.Bootstrap().ok());
  const MemberId primary = harness.WaitForPrimary(30 * kSecond);
  ASSERT_FALSE(primary.empty());
  for (int i = 0; i < 15; ++i) {
    ASSERT_TRUE(harness.SyncWrite("s" + std::to_string(i), "v").status.ok());
  }
  DrainAppliers(&harness, 30 * kSecond);
  ASSERT_TRUE(harness.CheckReplicaConsistency());
  for (const MemberId& id : harness.database_ids()) {
    if (id == primary) continue;
    const auto stats = harness.node(id)->server()->stats();
    EXPECT_GT(stats.applier_transactions_applied, 0u) << id;
    EXPECT_EQ(harness.node(id)->server()->ShowReplicaStatus().lag_entries, 0u)
        << id;
  }
}

}  // namespace
}  // namespace myraft::server

// FlexiRaft quorum engine: unit tests for all three modes plus cluster
// tests showing in-region commit, dynamic quorum shifting after failover,
// and the quorum-intersection safety property under random layouts.

#include "flexiraft/flexiraft.h"

#include <gtest/gtest.h>

#include <map>

#include "raft_test_harness.h"
#include "util/random.h"

namespace myraft::flexiraft {
namespace {

using raft::QuorumContext;
using raft_test::RaftTestCluster;
constexpr uint64_t kSecond = 1'000'000;

/// Paper topology: primary + 2 logtailers per region, 3 regions, one
/// mysql voter per region.
MembershipConfig PaperConfig() {
  MembershipConfig config;
  for (int r = 0; r < 3; ++r) {
    const std::string region = "r" + std::to_string(r);
    config.members.push_back(MemberInfo{"db" + std::to_string(r), region,
                                        MemberKind::kMySql,
                                        RaftMemberType::kVoter});
    config.members.push_back(MemberInfo{"lt" + std::to_string(r) + "a",
                                        region, MemberKind::kLogtailer,
                                        RaftMemberType::kVoter});
    config.members.push_back(MemberInfo{"lt" + std::to_string(r) + "b",
                                        region, MemberKind::kLogtailer,
                                        RaftMemberType::kVoter});
  }
  return config;
}

QuorumContext Context(const MembershipConfig& config, const MemberId& subject,
                      const RegionId& subject_region,
                      const RegionId& last_leader_region = "") {
  QuorumContext context;
  context.config = &config;
  context.subject = subject;
  context.subject_region = subject_region;
  context.last_leader_region = last_leader_region;
  return context;
}

TEST(FlexiRaftUnitTest, SingleRegionCommitQuorum) {
  FlexiRaftQuorumEngine engine({QuorumMode::kSingleRegionDynamic});
  const auto config = PaperConfig();
  const auto context = Context(config, "db0", "r0");

  // Leader alone: 1 of 3 in-region voters — not enough.
  EXPECT_FALSE(engine.IsCommitQuorumSatisfied(context, {"db0"}));
  // Leader + one in-region logtailer: the paper's data quorum.
  EXPECT_TRUE(engine.IsCommitQuorumSatisfied(context, {"db0", "lt0a"}));
  // Acks from other regions don't help if the home region lacks majority.
  EXPECT_FALSE(engine.IsCommitQuorumSatisfied(
      context, {"db0", "db1", "db2", "lt1a", "lt2a"}));
}

TEST(FlexiRaftUnitTest, SingleRegionElectionQuorumSameRegion) {
  FlexiRaftQuorumEngine engine({QuorumMode::kSingleRegionDynamic});
  const auto config = PaperConfig();
  // Candidate in the same region as the last leader: its own region
  // majority covers both requirements.
  const auto context = Context(config, "lt0a", "r0", "r0");
  EXPECT_TRUE(engine.IsElectionQuorumSatisfied(context, {"lt0a", "db0"}));
  EXPECT_FALSE(engine.IsElectionQuorumSatisfied(context, {"lt0a"}));
}

TEST(FlexiRaftUnitTest, SingleRegionElectionQuorumCrossRegion) {
  FlexiRaftQuorumEngine engine({QuorumMode::kSingleRegionDynamic});
  const auto config = PaperConfig();
  // Candidate in r1 while the last leader was in r0: needs majorities in
  // both regions.
  const auto context = Context(config, "db1", "r1", "r0");
  EXPECT_FALSE(
      engine.IsElectionQuorumSatisfied(context, {"db1", "lt1a"}));  // r1 only
  EXPECT_FALSE(engine.IsElectionQuorumSatisfied(
      context, {"db1", "db0", "lt0a"}));  // r0 majority but not r1
  EXPECT_TRUE(engine.IsElectionQuorumSatisfied(
      context, {"db1", "lt1a", "db0", "lt0a"}));
}

TEST(FlexiRaftUnitTest, BootstrapElectionNeedsGlobalMajority) {
  FlexiRaftQuorumEngine engine({QuorumMode::kSingleRegionDynamic});
  const auto config = PaperConfig();
  const auto context = Context(config, "db0", "r0", /*last leader*/ "");
  // 9 voters -> needs 5 overall plus own-region majority.
  EXPECT_FALSE(engine.IsElectionQuorumSatisfied(
      context, {"db0", "lt0a", "lt0b", "db1"}));
  EXPECT_TRUE(engine.IsElectionQuorumSatisfied(
      context, {"db0", "lt0a", "lt0b", "db1", "lt1a"}));
}

TEST(FlexiRaftUnitTest, DynamicElectionRequiresEvidenceCoverage) {
  FlexiRaftQuorumEngine engine({QuorumMode::kSingleRegionDynamic});
  const auto config = PaperConfig();
  auto context = Context(config, "db1", "r1", "r0");
  const std::set<MemberId> granted{"db1", "lt1a", "db0", "lt0a"};
  // Caller-vouched view: the scalar rule accepts r1 + r0 majorities.
  EXPECT_TRUE(engine.IsElectionQuorumSatisfied(context, granted));
  // Live-election view: the same grants are not trusted until a majority
  // of EVERY region has responded — the freshest leader evidence could be
  // hiding in silent r2.
  std::set<MemberId> responded = granted;
  std::set<RegionId> evidence{"r0"};
  context.responded = &responded;
  context.evidence_regions = &evidence;
  EXPECT_FALSE(engine.IsElectionQuorumSatisfied(context, granted));
  // Denials carry evidence too: r2 responses complete the coverage.
  responded.insert("lt2a");
  responded.insert("lt2b");
  EXPECT_TRUE(engine.IsElectionQuorumSatisfied(context, granted));
}

TEST(FlexiRaftUnitTest, DynamicElectionRequiresAllEvidenceRegions) {
  FlexiRaftQuorumEngine engine({QuorumMode::kSingleRegionDynamic});
  const auto config = PaperConfig();
  auto context = Context(config, "db1", "r1", "r0");
  std::set<MemberId> responded;
  for (const auto& m : config.members) responded.insert(m.id);
  // A binding vote recorded for an r2 candidate means a leader may exist
  // there: its data quorum must be intersected too, not just the
  // max-term region's (two candidates can disagree on the max).
  std::set<RegionId> evidence{"r0", "r2"};
  context.responded = &responded;
  context.evidence_regions = &evidence;
  std::set<MemberId> granted{"db1", "lt1a", "db0", "lt0a"};
  EXPECT_FALSE(engine.IsElectionQuorumSatisfied(context, granted));
  granted.insert("lt2a");
  granted.insert("lt2b");
  EXPECT_TRUE(engine.IsElectionQuorumSatisfied(context, granted));
}

TEST(FlexiRaftUnitTest, PristineClusterElectionNeedsEveryRegion) {
  FlexiRaftQuorumEngine engine({QuorumMode::kSingleRegionDynamic});
  const auto config = PaperConfig();
  auto context = Context(config, "db0", "r0", "");
  std::set<MemberId> responded;
  for (const auto& m : config.members) responded.insert(m.id);
  std::set<RegionId> evidence;  // nobody ever led or voted
  context.responded = &responded;
  context.evidence_regions = &evidence;
  // A plain global majority is not enough on the live path: two pristine
  // same-term candidates with disjoint global majorities must still
  // share a region-majority somewhere.
  EXPECT_FALSE(engine.IsElectionQuorumSatisfied(
      context, {"db0", "lt0a", "lt0b", "db1", "lt1a"}));
  EXPECT_TRUE(engine.IsElectionQuorumSatisfied(
      context, {"db0", "lt0a", "db1", "lt1a", "db2", "lt2a"}));
}

// Model-level regression for a double-leader found by the chaos harness:
// two same-term candidates aggregate the last-leader view from whichever
// voters happened to respond, judge themselves against divergent stale
// views, and win with disjoint quorums. Simulates the voter protocol
// (binding vote per term, evidence reported pre-vote and excluding votes
// for the requester) under random layouts, histories, reachability and
// interleavings: no interleaving may produce two winners.
class FlexiRaftElectionSafetyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(FlexiRaftElectionSafetyTest, SameTermCandidatesCannotBothWin) {
  Random rng(GetParam());
  FlexiRaftQuorumEngine engine({QuorumMode::kSingleRegionDynamic});
  for (int round = 0; round < 200; ++round) {
    MembershipConfig config;
    const int regions = 2 + static_cast<int>(rng.Uniform(3));
    for (int r = 0; r < regions; ++r) {
      const int voters = 1 + static_cast<int>(rng.Uniform(5));
      for (int v = 0; v < voters; ++v) {
        config.members.push_back(MemberInfo{
            StringPrintf("m%d_%d", r, v), "r" + std::to_string(r),
            MemberKind::kMySql, RaftMemberType::kVoter});
      }
    }
    const auto& members = config.members;
    if (members.size() < 2) continue;

    // Per-voter persisted state: the latest binding vote (term, for,
    // region) — earlier failed elections leave these behind.
    struct VoterState {
      uint64_t vote_term = 0;
      MemberId voted_for;
      RegionId voted_region;
    };
    std::map<MemberId, VoterState> state;
    for (const auto& m : members) {
      VoterState s;
      if (rng.OneIn(2)) {
        const auto& past = members[rng.Uniform(members.size())];
        s.vote_term = 1 + rng.Uniform(5);
        s.voted_for = past.id;
        s.voted_region = past.region;
      }
      state[m.id] = s;
    }

    const uint64_t kTerm = 10;
    const size_t ai = rng.Uniform(members.size());
    size_t bi = rng.Uniform(members.size() - 1);
    if (bi >= ai) ++bi;
    const MemberInfo& cand_a = members[ai];
    const MemberInfo& cand_b = members[bi];

    struct Tally {
      std::set<MemberId> granted;
      std::set<MemberId> responded;
      std::set<RegionId> evidence;
    };
    Tally tally_a, tally_b;
    auto respond = [&](const MemberInfo& voter, const MemberInfo& cand,
                       Tally* tally) {
      tally->responded.insert(voter.id);
      VoterState& s = state[voter.id];
      // Evidence computed before recording this vote, excluding votes
      // for the requester itself (mirrors PotentialLeaderEvidence).
      if (s.vote_term > 0 && s.voted_for != cand.id) {
        tally->evidence.insert(s.voted_region);
      }
      if (s.voted_for.empty() || s.vote_term < kTerm) {
        s.vote_term = kTerm;
        s.voted_for = cand.id;
        s.voted_region = cand.region;
        tally->granted.insert(voter.id);
      } else if (s.voted_for == cand.id) {
        tally->granted.insert(voter.id);
      }
    };
    // Candidates vote for themselves first.
    respond(cand_a, cand_a, &tally_a);
    respond(cand_b, cand_b, &tally_b);
    // Remaining voters handle the two requests in random order; either
    // request may be lost to them entirely.
    for (const auto& m : members) {
      if (m.id == cand_a.id || m.id == cand_b.id) continue;
      const bool reach_a = !rng.OneIn(4);
      const bool reach_b = !rng.OneIn(4);
      const bool a_first = rng.OneIn(2);
      if (a_first && reach_a) respond(m, cand_a, &tally_a);
      if (reach_b) respond(m, cand_b, &tally_b);
      if (!a_first && reach_a) respond(m, cand_a, &tally_a);
    }
    // Each candidate may also (or may not) hear the rival's request.
    if (rng.OneIn(2)) respond(cand_a, cand_b, &tally_b);
    if (rng.OneIn(2)) respond(cand_b, cand_a, &tally_a);

    auto satisfied = [&](const MemberInfo& cand, const Tally& tally) {
      QuorumContext context =
          Context(config, cand.id, cand.region, /*last leader*/ "");
      context.responded = &tally.responded;
      context.evidence_regions = &tally.evidence;
      return engine.IsElectionQuorumSatisfied(context, tally.granted);
    };
    const bool a_wins = satisfied(cand_a, tally_a);
    const bool b_wins = satisfied(cand_b, tally_b);
    ASSERT_FALSE(a_wins && b_wins)
        << "round " << round << ": " << cand_a.id << " and " << cand_b.id
        << " both won term " << kTerm;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlexiRaftElectionSafetyTest,
                         ::testing::Values(101, 202, 303, 404, 505));

TEST(FlexiRaftUnitTest, MultiRegionMode) {
  FlexiRaftOptions options;
  options.mode = QuorumMode::kMultiRegion;
  options.multi_region_commit_regions = 2;
  FlexiRaftQuorumEngine engine(options);
  const auto config = PaperConfig();
  const auto context = Context(config, "db0", "r0");

  // One region majority is not enough to commit.
  EXPECT_FALSE(engine.IsCommitQuorumSatisfied(context, {"db0", "lt0a"}));
  // Two region majorities commit.
  EXPECT_TRUE(engine.IsCommitQuorumSatisfied(
      context, {"db0", "lt0a", "db1", "lt1a"}));
  // Election: R=3, K=2 -> needs majorities in 2 regions.
  EXPECT_FALSE(engine.IsElectionQuorumSatisfied(context, {"db0", "lt0a"}));
  EXPECT_TRUE(engine.IsElectionQuorumSatisfied(
      context, {"db0", "lt0a", "lt1a", "lt1b"}));
}

TEST(FlexiRaftUnitTest, VanillaModeMatchesMajorityEngine) {
  FlexiRaftQuorumEngine engine({QuorumMode::kVanillaMajority});
  raft::MajorityQuorumEngine vanilla;
  const auto config = PaperConfig();
  const auto context = Context(config, "db0", "r0");
  Random rng(4);
  for (int i = 0; i < 200; ++i) {
    std::set<MemberId> members;
    for (const auto& m : config.members) {
      if (rng.OneIn(2)) members.insert(m.id);
    }
    EXPECT_EQ(engine.IsCommitQuorumSatisfied(context, members),
              vanilla.IsCommitQuorumSatisfied(context, members));
    EXPECT_EQ(engine.IsElectionQuorumSatisfied(context, members),
              vanilla.IsElectionQuorumSatisfied(context, members));
  }
}

// Safety property: any satisfying election quorum intersects any possible
// data-commit quorum of the previous leader (that is what makes leader
// completeness hold).
class FlexiRaftIntersectionTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(FlexiRaftIntersectionTest, ElectionQuorumIntersectsPriorDataQuorums) {
  Random rng(GetParam());
  // Random layout: 2-4 regions, 1-5 voters each.
  MembershipConfig config;
  const int regions = 2 + static_cast<int>(rng.Uniform(3));
  for (int r = 0; r < regions; ++r) {
    const int voters = 1 + static_cast<int>(rng.Uniform(5));
    for (int v = 0; v < voters; ++v) {
      config.members.push_back(MemberInfo{
          StringPrintf("m%d_%d", r, v), "r" + std::to_string(r),
          MemberKind::kMySql, RaftMemberType::kVoter});
    }
  }
  FlexiRaftQuorumEngine engine({QuorumMode::kSingleRegionDynamic});

  const auto by_region = config.VotersByRegion();
  // Previous leader lived in region L; its data quorums are the
  // majorities of region L.
  for (const auto& [leader_region, leader_voters] : by_region) {
    for (const auto& [cand_region, cand_voters] : by_region) {
      const MemberId candidate = cand_voters[0];
      const auto context =
          Context(config, candidate, cand_region, leader_region);
      // Sample random elector sets; whenever the engine says "satisfied",
      // check intersection with every minimal data quorum of L.
      for (int trial = 0; trial < 50; ++trial) {
        std::set<MemberId> granted{candidate};
        for (const auto& m : config.members) {
          if (rng.OneIn(2)) granted.insert(m.id);
        }
        if (!engine.IsElectionQuorumSatisfied(context, granted)) continue;

        // Enumerate minimal majorities of leader_region via bitmask (<=5
        // voters per region).
        const auto& lv = leader_voters;
        const int need = static_cast<int>(lv.size()) / 2 + 1;
        for (uint32_t mask = 0; mask < (1u << lv.size()); ++mask) {
          if (__builtin_popcount(mask) != need) continue;
          bool intersects = false;
          for (size_t i = 0; i < lv.size(); ++i) {
            if ((mask & (1u << i)) && granted.count(lv[i]) > 0) {
              intersects = true;
              break;
            }
          }
          ASSERT_TRUE(intersects)
              << "election quorum misses a data quorum of "
              << leader_region;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlexiRaftIntersectionTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// --- Cluster tests ------------------------------------------------------------

raft::RaftOptions FastOptions() {
  raft::RaftOptions options;
  options.heartbeat_interval_micros = 500'000;
  options.missed_heartbeats_before_election = 3;
  return options;
}

void AddPaperTopology(RaftTestCluster* cluster) {
  for (int r = 0; r < 3; ++r) {
    const std::string region = "r" + std::to_string(r);
    cluster->AddMemberSpec("db" + std::to_string(r), region,
                           MemberKind::kMySql);
    cluster->AddMemberSpec("lt" + std::to_string(r) + "a", region,
                           MemberKind::kLogtailer);
    cluster->AddMemberSpec("lt" + std::to_string(r) + "b", region,
                           MemberKind::kLogtailer);
  }
}

TEST(FlexiRaftClusterTest, CommitsWithOnlyInRegionAcks) {
  // Cut all cross-region links after electing a leader: with FlexiRaft
  // single-region-dynamic the leader keeps committing, with vanilla
  // majority (9 voters, 3 reachable) it cannot.
  for (const bool flexi : {true, false}) {
    static FlexiRaftQuorumEngine flexi_engine({
        QuorumMode::kSingleRegionDynamic});
    static raft::MajorityQuorumEngine majority_engine;
    RaftTestCluster cluster(2024);
    AddPaperTopology(&cluster);
    cluster.StartAll(
        flexi ? static_cast<const raft::QuorumEngine*>(&flexi_engine)
              : &majority_engine,
        FastOptions());
    const MemberId leader_id = cluster.WaitForLeader(10 * kSecond);
    ASSERT_FALSE(leader_id.empty()) << "flexi=" << flexi;
    raft::RaftConsensus* leader = cluster.node(leader_id)->consensus();
    ASSERT_TRUE(cluster.WaitForCommit(leader_id, leader->last_logged(),
                                      3 * kSecond));

    // Partition the leader's region from everything else.
    const RegionId home = cluster.node(leader_id)->region();
    cluster.network()->SetRegionPartitioned(home, true);

    auto opid = leader->Replicate(EntryType::kNoOp, "in-region-commit");
    ASSERT_TRUE(opid.ok());
    const bool committed = cluster.WaitForCommit(leader_id, *opid, 3 * kSecond);
    EXPECT_EQ(committed, flexi) << "flexi=" << flexi;
    cluster.network()->SetRegionPartitioned(home, false);
  }
}

TEST(FlexiRaftClusterTest, DynamicQuorumShiftsAfterFailover) {
  static FlexiRaftQuorumEngine engine({QuorumMode::kSingleRegionDynamic});
  RaftTestCluster cluster(909);
  AddPaperTopology(&cluster);
  cluster.StartAll(&engine, FastOptions());

  const MemberId first_leader = cluster.WaitForLeader(10 * kSecond);
  ASSERT_FALSE(first_leader.empty());
  const RegionId first_region = cluster.node(first_leader)->region();
  raft::RaftConsensus* leader = cluster.node(first_leader)->consensus();
  auto opid = leader->Replicate(EntryType::kNoOp, "gen1");
  ASSERT_TRUE(opid.ok());
  ASSERT_TRUE(cluster.WaitForCommit(first_leader, *opid, 3 * kSecond));

  // Kill the whole first region except... kill the db and both
  // logtailers: the quorum fixer case. Instead kill only the leader: the
  // in-region logtailers still hold the tail, so a cross-region candidate
  // can win by getting votes from the dead leader's region + its own.
  cluster.Crash(first_leader);
  const MemberId second_leader = cluster.WaitForLeader(15 * kSecond);
  ASSERT_FALSE(second_leader.empty());
  ASSERT_NE(second_leader, first_leader);

  // A logtailer of the first region may win first (longest log) and then
  // hand off; eventually a database leader stands. Wherever it is, it
  // must now commit with ITS region's quorum only.
  cluster.loop()->RunFor(10 * kSecond);
  const MemberId final_leader = cluster.CurrentLeader();
  ASSERT_FALSE(final_leader.empty());
  raft::RaftConsensus* new_leader = cluster.node(final_leader)->consensus();
  if (new_leader->role() != RaftRole::kLeader) return;
  const RegionId new_region = cluster.node(final_leader)->region();

  // Partition everything except the new leader's region: commits still
  // flow (quorum shifted with the leadership).
  cluster.network()->SetRegionPartitioned(new_region, true);
  auto opid2 = new_leader->Replicate(EntryType::kNoOp, "gen2");
  ASSERT_TRUE(opid2.ok()) << opid2.status();
  EXPECT_TRUE(cluster.WaitForCommit(final_leader, *opid2, 3 * kSecond))
      << "new leader in " << new_region << " (was " << first_region << ")";
}

TEST(FlexiRaftClusterTest, CommittedEntriesSurviveCrossRegionFailover) {
  // Safety end-to-end: commit in region r0's quorum only, crash the
  // leader, and require that any new leader still has the entry.
  static FlexiRaftQuorumEngine engine({QuorumMode::kSingleRegionDynamic});
  for (uint64_t seed : {11u, 22u, 33u, 44u}) {
    RaftTestCluster cluster(seed);
    AddPaperTopology(&cluster);
    cluster.StartAll(&engine, FastOptions());
    const MemberId leader_id = cluster.WaitForLeader(10 * kSecond);
    ASSERT_FALSE(leader_id.empty());
    raft::RaftConsensus* leader = cluster.node(leader_id)->consensus();

    auto opid = leader->Replicate(EntryType::kNoOp, "must-survive");
    ASSERT_TRUE(opid.ok());
    ASSERT_TRUE(cluster.WaitForCommit(leader_id, *opid, 3 * kSecond));
    // Crash immediately after commit: the entry may only exist in the
    // leader's region.
    cluster.Crash(leader_id);

    const MemberId new_leader_id = cluster.WaitForLeader(20 * kSecond);
    ASSERT_FALSE(new_leader_id.empty()) << "seed " << seed;
    cluster.loop()->RunFor(5 * kSecond);
    const MemberId final_id = cluster.CurrentLeader();
    ASSERT_FALSE(final_id.empty());
    auto entry =
        cluster.node(final_id)->consensus()->log()->Read(opid->index);
    ASSERT_TRUE(entry.ok()) << "seed " << seed << ": committed entry lost";
    EXPECT_EQ(entry->payload, "must-survive") << "seed " << seed;
  }
}

TEST(FlexiRaftClusterTest, MultiRegionModeSurvivesFullRegionLoss) {
  // §4.1's consistency-over-latency configuration: with multi-region
  // quorums (k=2 of 3 regions), losing an entire region neither loses
  // data nor availability — at the price of cross-region commit RTTs.
  FlexiRaftOptions options;
  options.mode = QuorumMode::kMultiRegion;
  options.multi_region_commit_regions = 2;
  static FlexiRaftQuorumEngine engine(options);
  RaftTestCluster cluster(606);
  AddPaperTopology(&cluster);
  cluster.StartAll(&engine, FastOptions());

  const MemberId leader_id = cluster.WaitForLeader(15 * kSecond);
  ASSERT_FALSE(leader_id.empty());
  raft::RaftConsensus* leader = cluster.node(leader_id)->consensus();
  auto opid = leader->Replicate(EntryType::kNoOp, "multi-region");
  ASSERT_TRUE(opid.ok());
  ASSERT_TRUE(cluster.WaitForCommit(leader_id, *opid, 3 * kSecond));

  // Kill a whole region that does NOT host the leader.
  RegionId victim_region;
  for (const MemberId& id : cluster.ids()) {
    if (cluster.node(id)->region() != cluster.node(leader_id)->region()) {
      victim_region = cluster.node(id)->region();
      break;
    }
  }
  for (const MemberId& id : cluster.ids()) {
    if (cluster.node(id)->region() == victim_region) cluster.Crash(id);
  }
  // Commits still flow: 2 surviving regions form the k=2 quorum.
  auto opid2 = leader->Replicate(EntryType::kNoOp, "post-outage");
  ASSERT_TRUE(opid2.ok());
  EXPECT_TRUE(cluster.WaitForCommit(leader_id, *opid2, 5 * kSecond));

  // Even losing the LEADER's region afterwards only costs an election:
  // the third region plus the other survivor elect and keep the data.
  const RegionId leader_region = cluster.node(leader_id)->region();
  for (const MemberId& id : cluster.ids()) {
    if (cluster.node(id)->region() == leader_region) cluster.Crash(id);
  }
  // Restart the first victim region so two regions are up again.
  for (const MemberId& id : cluster.ids()) {
    if (cluster.node(id)->region() == victim_region) {
      cluster.Restart(id);
    }
  }
  const MemberId new_leader = cluster.WaitForLeader(30 * kSecond);
  ASSERT_FALSE(new_leader.empty());
  auto entry =
      cluster.node(new_leader)->consensus()->log()->Read(opid2->index);
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->payload, "post-outage");
}

TEST(FlexiRaftClusterTest, VotingHistoryBlocksStaleQuorumElection) {
  // Regression for a real safety bug found by shadow testing: members that
  // voted for a new leader but never received its AppendEntries (their
  // region's proxy relay had died) must not later form an election quorum
  // based on their stale last-known-leader view and truncate the new
  // leader's committed entries. The voting history (§4.1) is what blocks
  // them.
  static FlexiRaftQuorumEngine engine({QuorumMode::kSingleRegionDynamic});
  RaftTestCluster cluster(808);
  AddPaperTopology(&cluster);  // r0/r1/r2, db + 2 logtailers each
  cluster.StartAll(&engine, FastOptions());

  ASSERT_FALSE(cluster.WaitForLeader(10 * kSecond).empty());
  cluster.loop()->RunFor(2 * kSecond);
  const MemberId first_leader = cluster.CurrentLeader();
  ASSERT_FALSE(first_leader.empty());

  // Move leadership to a database in another region (graceful §4.3
  // transfer keeps this deterministic — a timeout-driven failover may
  // just elect an in-region logtailer), then crash the old leader. The
  // old region's logtailers cast binding votes for the new leader but
  // will be cut off before receiving any of its entries.
  const RegionId old_region = cluster.node(first_leader)->region();
  MemberId new_leader;
  for (const MemberId& id : cluster.ids()) {
    if (cluster.node(id)->region() != old_region &&
        id.compare(0, 2, "db") == 0) {
      new_leader = id;
      break;
    }
  }
  ASSERT_FALSE(new_leader.empty());
  const Status transfer_status =
      cluster.node(first_leader)->consensus()->TransferLeadership(new_leader);
  ASSERT_TRUE(transfer_status.ok()) << transfer_status.ToString();
  for (int i = 0; i < 40 && cluster.CurrentLeader() != new_leader; ++i) {
    cluster.loop()->RunFor(kSecond / 2);
  }
  ASSERT_EQ(cluster.CurrentLeader(), new_leader);
  cluster.Crash(first_leader);
  const RegionId new_region = cluster.node(new_leader)->region();
  ASSERT_NE(new_region, old_region);

  // Immediately cut the old region's surviving voters off from everyone
  // else: they voted for the new leader but never see its entries.
  std::vector<MemberId> starved;
  for (const MemberId& id : cluster.ids()) {
    if (id == first_leader) continue;
    if (cluster.node(id)->region() != old_region) continue;
    starved.push_back(id);
    for (const MemberId& other : cluster.ids()) {
      if (cluster.node(other)->region() != old_region) {
        cluster.network()->SetLinkCut(id, other, true);
      }
    }
  }
  ASSERT_GE(starved.size(), 2u);

  // The new leader commits a batch the starved members never receive.
  raft::RaftConsensus* leader = cluster.node(new_leader)->consensus();
  OpId last;
  for (int i = 0; i < 10; ++i) {
    auto opid = leader->Replicate(EntryType::kNoOp, "committed-elsewhere");
    ASSERT_TRUE(opid.ok());
    last = *opid;
  }
  ASSERT_TRUE(cluster.WaitForCommit(new_leader, last, 5 * kSecond));

  // Let the starved pair time out and campaign repeatedly: they hold a
  // majority of their own region AND of the crashed ex-leader's region
  // (the same one), so without voting history they would elect
  // themselves and truncate `last`.
  cluster.loop()->RunFor(20 * kSecond);
  for (const MemberId& id : starved) {
    EXPECT_NE(cluster.node(id)->consensus()->role(), RaftRole::kLeader)
        << id << " stole leadership with a stale quorum";
  }
  EXPECT_EQ(leader->role(), RaftRole::kLeader);

  // Heal; everyone converges to the committed history, nothing truncated
  // on the leader's side.
  for (const MemberId& id : starved) {
    for (const MemberId& other : cluster.ids()) {
      cluster.network()->SetLinkCut(id, other, false);
    }
  }
  cluster.loop()->RunFor(5 * kSecond);
  auto entry = cluster.node(new_leader)->consensus()->log()->Read(last.index);
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->payload, "committed-elsewhere");
  for (const MemberId& id : starved) {
    auto starved_entry = cluster.node(id)->consensus()->log()->Read(last.index);
    ASSERT_TRUE(starved_entry.ok()) << id;
    EXPECT_EQ(starved_entry->payload, "committed-elsewhere") << id;
  }
}

}  // namespace
}  // namespace myraft::flexiraft

// Pipelined-replication tests: the bounded in-flight window on the leader
// (streaming, duplicate suppression, stall accounting), out-of-order and
// stale response handling, rewind-cancels-suffix, timeout recovery, wire
// compression, and the LogCache catch-up read-ahead buffer. Cluster-level
// convergence under heavy jitter/loss (natural reordering) rides on the
// sim network.

#include <gtest/gtest.h>

#include "raft/consensus.h"
#include "raft/log_cache.h"
#include "raft_test_harness.h"
#include "util/compression.h"
#include "util/logging.h"

namespace myraft::raft {
namespace {

class CapturingOutbox final : public RaftOutbox {
 public:
  void Send(Message message) override { sent.push_back(std::move(message)); }

  std::vector<AppendEntriesRequest> AppendsTo(const MemberId& dest) const {
    std::vector<AppendEntriesRequest> out;
    for (const auto& m : sent) {
      const auto* typed = std::get_if<AppendEntriesRequest>(&m);
      if (typed != nullptr && typed->dest == dest) out.push_back(*typed);
    }
    return out;
  }

  uint64_t PayloadBytesTo(const MemberId& dest) const {
    uint64_t bytes = 0;
    for (const auto& request : AppendsTo(dest)) {
      for (const auto& entry : request.entries) bytes += entry.payload.size();
    }
    return bytes;
  }

  std::vector<Message> sent;
};

class PipeliningTest : public ::testing::Test {
 protected:
  void Start(RaftOptions options) {
    env_ = NewMemEnv();
    meta_store_ =
        std::make_unique<ConsensusMetadataStore>(env_.get(), "/cmeta");
    options.self = "a";
    options.region = "r0";
    options.enable_pre_vote = false;
    consensus_ = std::make_unique<RaftConsensus>(
        options, &log_, &quorum_, meta_store_.get(), &clock_, &rng_,
        &outbox_, &listener_);
    MembershipConfig config;
    config.members = {
        {"a", "r0", MemberKind::kMySql, RaftMemberType::kVoter},
        {"b", "r0", MemberKind::kMySql, RaftMemberType::kVoter},
        {"c", "r1", MemberKind::kMySql, RaftMemberType::kVoter},
    };
    ASSERT_TRUE(consensus_->Bootstrap(config).ok());
    ASSERT_TRUE(
        consensus_->StartElection(ElectionMode::kRealElection).ok());
    VoteResponse grant;
    grant.from = "b";
    grant.dest = "a";
    grant.term = consensus_->term();
    grant.granted = true;
    consensus_->HandleMessage(Message(grant));
    ASSERT_EQ(consensus_->role(), RaftRole::kLeader);
    // Commit the leader's no-op so later batches start from a clean base.
    AckFrom("b", log_.LastOpId());
    outbox_.sent.clear();
  }

  /// Pipeline-friendly options: one entry per batch, window of 4.
  RaftOptions SmallBatchOptions() {
    RaftOptions options;
    options.max_entries_per_rpc = 1;
    options.max_inflight_batches = 4;
    options.wire_compression_min_bytes = 0;  // off unless a test opts in
    return options;
  }

  void AckFrom(const MemberId& from, OpId received) {
    AppendEntriesResponse response;
    response.from = from;
    response.dest = "a";
    response.term = consensus_->term();
    response.success = true;
    response.last_received = received;
    response.last_durable_index = received.index;
    consensus_->HandleMessage(Message(response));
  }

  void RejectFrom(const MemberId& from, OpId hint,
                  uint64_t term_override = 0) {
    AppendEntriesResponse response;
    response.from = from;
    response.dest = "a";
    response.term = term_override != 0 ? term_override : consensus_->term();
    response.success = false;
    response.last_received = hint;
    response.last_durable_index = hint.index;
    // A real follower echoes the refused request's prev; its tail hint is
    // the closest stand-in a synthesized rejection has.
    response.request_prev_index = hint.index;
    consensus_->HandleMessage(Message(response));
  }

  std::vector<OpId> Replicate(int n, const std::string& payload = "x") {
    std::vector<OpId> out;
    for (int i = 0; i < n; ++i) {
      auto opid = consensus_->Replicate(EntryType::kNoOp, payload);
      MYRAFT_CHECK(opid.ok());
      out.push_back(*opid);
    }
    return out;
  }

  ManualClock clock_;
  Random rng_{1};
  std::unique_ptr<Env> env_;
  std::unique_ptr<ConsensusMetadataStore> meta_store_;
  MemLog log_;
  MajorityQuorumEngine quorum_;
  CapturingOutbox outbox_;
  StateMachineListener listener_;
  std::unique_ptr<RaftConsensus> consensus_;
};

TEST_F(PipeliningTest, StreamsBatchesUpToWindowLimit) {
  Start(SmallBatchOptions());
  Replicate(6);
  // One entry per batch, window of 4: exactly 4 batches stream to each
  // peer before any ack; the remaining 2 stall.
  auto to_b = outbox_.AppendsTo("b");
  ASSERT_EQ(to_b.size(), 4u);
  for (size_t i = 0; i < to_b.size(); ++i) {
    ASSERT_EQ(to_b[i].entries.size(), 1u);
    // Consecutive batches chain: prev advances one entry at a time.
    EXPECT_EQ(to_b[i].prev.index, to_b[0].prev.index + i);
  }
  EXPECT_GT(consensus_->stats().pipeline_stalls, 0u);
  EXPECT_EQ(consensus_->peers().at("b").inflight.size(), 4u);

  // A cumulative ack covering all four batches drains the window and the
  // stalled suffix streams immediately.
  outbox_.sent.clear();
  AckFrom("b", to_b.back().entries.back().id);
  to_b = outbox_.AppendsTo("b");
  ASSERT_EQ(to_b.size(), 2u);
  EXPECT_EQ(to_b[0].prev.index + 1, to_b[1].prev.index);
}

TEST_F(PipeliningTest, NoDuplicateSendWhileBatchOutstanding) {
  // Regression: the leader used to re-send from next_index on broadcast
  // ticks while a batch was outstanding, duplicating payload bytes under
  // latency. With the optimistic cursor, ticks send nothing new.
  Start(SmallBatchOptions());
  Replicate(2);
  const uint64_t bytes_after_send = outbox_.PayloadBytesTo("b");
  EXPECT_GT(bytes_after_send, 0u);
  for (int i = 0; i < 5; ++i) {
    clock_.AdvanceMicros(10'000);  // well under rpc_timeout
    consensus_->Tick();
  }
  EXPECT_EQ(outbox_.PayloadBytesTo("b"), bytes_after_send);
}

TEST_F(PipeliningTest, OutOfOrderAcksAreMonotone) {
  Start(SmallBatchOptions());
  auto opids = Replicate(4);
  // The ack for batch 3 overtakes the acks for batches 1-2 (jittery
  // link): the cumulative tail retires all three batches at once...
  AckFrom("b", opids[2]);
  EXPECT_EQ(consensus_->peers().at("b").match_index, opids[2].index);
  EXPECT_EQ(consensus_->peers().at("b").inflight.size(), 1u);
  // ...and the late-arriving ack for batch 1 is a harmless no-op.
  AckFrom("b", opids[0]);
  EXPECT_EQ(consensus_->peers().at("b").match_index, opids[2].index);
  EXPECT_EQ(consensus_->peers().at("b").inflight.size(), 1u);
  AckFrom("b", opids[3]);
  EXPECT_TRUE(consensus_->peers().at("b").inflight.empty());
  EXPECT_TRUE(consensus_->IsCommitted(opids[3]));
}

TEST_F(PipeliningTest, StaleRejectionBelowMatchIgnored) {
  Start(SmallBatchOptions());
  auto opids = Replicate(4);
  AckFrom("b", opids[3]);  // fully caught up: match = last
  const uint64_t next_before = consensus_->peers().at("b").next_index;
  outbox_.sent.clear();
  // A reordered rejection from before the acks arrives late. Its hint is
  // below b's match index, so acting on it would re-stream an
  // already-acked suffix; it must be dropped.
  RejectFrom("b", opids[0]);
  EXPECT_EQ(consensus_->stats().stale_responses_ignored, 1u);
  EXPECT_EQ(consensus_->peers().at("b").next_index, next_before);
  EXPECT_TRUE(outbox_.AppendsTo("b").empty());
}

TEST_F(PipeliningTest, RejectionCancelsInflightSuffixAndRewinds) {
  Start(SmallBatchOptions());
  Replicate(4);
  auto first_wave = outbox_.AppendsTo("b");
  ASSERT_EQ(first_wave.size(), 4u);
  const uint64_t base = first_wave[0].entries[0].id.index;
  outbox_.sent.clear();
  // b rejects the first batch (log-matching conflict at prev). The three
  // batches behind it chain off the rejected one, so the whole window is
  // cancelled and the leader restreams from the rewound cursor — stepping
  // back at least one entry below the rejected batch to guarantee
  // progress against a conflicting prev.
  RejectFrom("b", OpId{0, base - 1});
  EXPECT_GE(consensus_->stats().window_rewinds, 1u);
  auto second_wave = outbox_.AppendsTo("b");
  ASSERT_EQ(second_wave.size(), 4u);
  EXPECT_EQ(second_wave[0].prev.index, base - 2);
  EXPECT_EQ(second_wave[0].entries[0].id.index, base - 1);
}

TEST_F(PipeliningTest, OldestBatchTimeoutRewindsWindow) {
  Start(SmallBatchOptions());
  Replicate(3);
  auto first_wave = outbox_.AppendsTo("b");
  ASSERT_EQ(first_wave.size(), 3u);
  outbox_.sent.clear();
  // No response at all: past rpc_timeout the oldest in-flight batch is
  // declared lost, the window is rewound, and the suffix restreams.
  clock_.AdvanceMicros(2'000'000);
  consensus_->Tick();
  EXPECT_GE(consensus_->stats().window_rewinds, 1u);
  auto second_wave = outbox_.AppendsTo("b");
  ASSERT_EQ(second_wave.size(), 3u);
  EXPECT_EQ(second_wave[0].prev.index, first_wave[0].prev.index);
}

TEST_F(PipeliningTest, StallCountsTransitionsNotAttempts) {
  Start(SmallBatchOptions());
  auto opids = Replicate(7);
  // Window of 4: entries 5-7 each bounce off the full window, but the
  // stall counter records the *transition* into the stalled state — one
  // per peer (b and c) — not one per blocked send attempt.
  EXPECT_EQ(consensus_->stats().pipeline_stalls, 2u);
  // Draining b's window ends its stall and records its duration in the
  // stall histogram; c stays stalled without further counting.
  clock_.AdvanceMicros(3'000);
  AckFrom("b", opids[3]);
  const auto* stall_hist =
      consensus_->metrics()->FindHistogram("raft.stall_duration_us");
  ASSERT_NE(stall_hist, nullptr);
  EXPECT_GE(stall_hist->snapshot().count(), 1u);
  EXPECT_EQ(consensus_->stats().pipeline_stalls, 2u);
}

TEST_F(PipeliningTest, MarkerOnlyHeartbeatWhenWindowFull) {
  RaftOptions options = SmallBatchOptions();
  options.max_inflight_batches = 1;
  options.adaptive_inflight_window = false;
  Start(options);
  auto opids = Replicate(2);
  // "c" never acks: its one-slot window is pinned by the bootstrap no-op
  // batch, so the commit marker cannot ride a new entry batch to it.
  outbox_.sent.clear();
  AckFrom("b", opids[1]);  // a+b majority commits both entries
  ASSERT_TRUE(consensus_->IsCommitted(opids[1]));
  clock_.AdvanceMicros(10'000);  // under heartbeat interval & rpc timeout
  consensus_->Tick();
  // The marker still reaches c: an entry-less heartbeat anchored at c's
  // acked match point, leaving the in-flight window untouched.
  auto to_c = outbox_.AppendsTo("c");
  ASSERT_GE(to_c.size(), 1u);
  const AppendEntriesRequest& hb = to_c.back();
  EXPECT_TRUE(hb.entries.empty());
  EXPECT_EQ(hb.commit_marker.index, opids[1].index);
  EXPECT_EQ(hb.prev.index, consensus_->peers().at("c").match_index);
  EXPECT_GE(consensus_->stats().marker_only_heartbeats, 1u);
  EXPECT_EQ(consensus_->peers().at("c").inflight.size(), 1u);
  // The marker is only re-sent once it advances again: an immediate
  // second tick stays quiet.
  outbox_.sent.clear();
  consensus_->Tick();
  EXPECT_TRUE(outbox_.AppendsTo("c").empty());
}

TEST_F(PipeliningTest, AdaptiveWindowGrowsWithMeasuredBdp) {
  Start(SmallBatchOptions());  // adaptive window on, static floor of 4
  EXPECT_EQ(consensus_->effective_window("b"), 4u);
  auto opids = Replicate(4);
  // One cumulative ack 5ms later: four batches delivered inside one RTT.
  // The BDP estimate (delivery rate x srtt, 2x gain) now says the pipe
  // holds more than the static floor.
  clock_.AdvanceMicros(5'000);
  AckFrom("b", opids[3]);
  EXPECT_GT(consensus_->effective_window("b"), 4u);
  // The wider window streams a burst the old floor would have split:
  // all 6 batches go out before any ack.
  outbox_.sent.clear();
  Replicate(6);
  EXPECT_EQ(outbox_.AppendsTo("b").size(), 6u);
  // "c" never acked, so it still sits at the floor with 4 streamed.
  EXPECT_EQ(consensus_->effective_window("c"), 4u);
  EXPECT_EQ(outbox_.AppendsTo("c").size(), 0u);  // window full since setup
}

TEST_F(PipeliningTest, TermBumpMidWindowStepsDown) {
  Start(SmallBatchOptions());
  Replicate(4);
  ASSERT_EQ(consensus_->peers().at("b").inflight.size(), 4u);
  RejectFrom("b", OpId{0, 0}, consensus_->term() + 1);
  EXPECT_EQ(consensus_->role(), RaftRole::kFollower);
  EXPECT_TRUE(consensus_->peers().empty());  // window state discarded
}

TEST_F(PipeliningTest, LargeBatchesCompressedOnTheWire) {
  RaftOptions options = SmallBatchOptions();
  options.wire_compression_min_bytes = 64;
  Start(options);
  const std::string compressible(4096, 'z');
  Replicate(1, compressible);
  auto to_b = outbox_.AppendsTo("b");
  ASSERT_EQ(to_b.size(), 1u);
  EXPECT_TRUE(to_b[0].entries_compressed);
  // The hot tail ships the LogCache's already-compressed span borrowed
  // via shared_payload (zero-copy), so size the logical bytes, not the
  // owned payload string (empty for a borrowed buffer).
  EXPECT_GT(to_b[0].entries[0].payload_bytes().size(), 0u);
  EXPECT_LT(to_b[0].entries[0].payload_bytes().size(), compressible.size());
  EXPECT_GE(consensus_->stats().wire_batches_compressed, 1u);
  EXPECT_GE(consensus_->stats().zero_copy_batches, 1u);
}

TEST_F(PipeliningTest, FollowerInflatesCompressedBatch) {
  RaftOptions options;
  options.enable_pre_vote = false;
  Start(options);  // "a" is leader; step it down to follow "b" at term 9
  const std::string payload(2048, 'q');
  LogEntry entry = LogEntry::Make({9, 2}, EntryType::kNoOp, payload);
  // Wire form: payload LzCompress'd, checksum still over the original.
  LogEntry wire = entry;
  LzCompress(entry.payload, &wire.payload);
  ASSERT_LT(wire.payload.size(), payload.size());

  AppendEntriesRequest request;
  request.leader = "b";
  request.dest = "a";
  request.term = 9;
  request.prev = consensus_->last_logged();
  request.entries = {wire};
  request.entries_compressed = true;
  consensus_->HandleMessage(Message(request));

  ASSERT_EQ(consensus_->role(), RaftRole::kFollower);
  auto stored = log_.Read(entry.id.index);
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(stored->payload, payload);  // inflated before append
  EXPECT_TRUE(stored->VerifyChecksum());
}

TEST_F(PipeliningTest, CorruptCompressedBatchRejectedNotApplied) {
  RaftOptions options;
  options.enable_pre_vote = false;
  Start(options);
  LogEntry wire = LogEntry::Make({9, 2}, EntryType::kNoOp, "not-lz-data");
  wire.payload = "\xff\xff garbage";
  AppendEntriesRequest request;
  request.leader = "b";
  request.dest = "a";
  request.term = 9;
  request.prev = consensus_->last_logged();
  request.entries = {wire};
  request.entries_compressed = true;
  outbox_.sent.clear();
  consensus_->HandleMessage(Message(request));
  EXPECT_FALSE(log_.HasEntry(wire.id.index));
  bool saw_failure = false;
  for (const auto& m : outbox_.sent) {
    const auto* r = std::get_if<AppendEntriesResponse>(&m);
    if (r != nullptr && !r->success) saw_failure = true;
  }
  EXPECT_TRUE(saw_failure);
}

// --- LogCache read-ahead ------------------------------------------------------

LogEntry CacheEntry(uint64_t index, const std::string& payload) {
  return LogEntry::Make({1, index}, EntryType::kNoOp, payload);
}

TEST(LogCacheReadahead, SideBufferServesSequentialCatchup) {
  raft::LogCache cache(1 << 20);
  for (uint64_t i = 5; i <= 8; ++i) {
    cache.PutReadahead(CacheEntry(i, "payload-" + std::to_string(i)));
  }
  for (uint64_t i = 5; i <= 8; ++i) {
    auto entry = cache.Get(i);
    ASSERT_TRUE(entry.ok()) << i;
    EXPECT_EQ(entry->payload, "payload-" + std::to_string(i));
  }
  EXPECT_EQ(cache.stats().readahead_hits, 4u);
  EXPECT_EQ(cache.stats().hits, 0u);  // none came from the main map
}

TEST(LogCacheReadahead, MissWithActiveBufferCounts) {
  raft::LogCache cache(1 << 20);
  cache.PutReadahead(CacheEntry(5, "x"));
  EXPECT_FALSE(cache.Get(42).ok());
  EXPECT_EQ(cache.stats().readahead_misses, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(LogCacheReadahead, MainCacheWinsAndTruncateCoversBuffer) {
  raft::LogCache cache(1 << 20);
  cache.Put(CacheEntry(5, "main"));
  cache.PutReadahead(CacheEntry(5, "stale-readahead"));  // dropped: dup
  auto entry = cache.Get(5);
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->payload, "main");
  EXPECT_EQ(cache.stats().hits, 1u);

  cache.PutReadahead(CacheEntry(9, "doomed"));
  cache.TruncateAfter(7);
  EXPECT_FALSE(cache.Contains(9));
}

// --- Cluster-level: reordering and delay via the sim network ------------------

TEST(PipeliningClusterTest, ConvergesUnderJitterLossAndLaggedFollower) {
  using namespace myraft::raft_test;
  // Heavy jitter makes in-flight batches and their acks arrive out of
  // order; loss exercises the timeout-rewind path.
  sim::NetworkOptions net;
  net.same_region = {150, 2'000};
  net.cross_region = {5'000, 10'000};
  net.loss_rate = 0.03;
  RaftTestCluster cluster(1234, net);
  cluster.AddMemberSpec("a", "r0");
  cluster.AddMemberSpec("b", "r0");
  cluster.AddMemberSpec("c", "r1");
  MajorityQuorumEngine quorum;
  RaftOptions options;
  options.max_entries_per_rpc = 2;  // many small batches in flight
  options.max_inflight_batches = 4;
  cluster.StartAll(&quorum, options);
  const MemberId leader = cluster.WaitForLeader(30'000'000);
  ASSERT_FALSE(leader.empty());
  // One follower's data path is badly backlogged while its acks stay
  // fast — rejections/acks for old windows keep crossing new batches.
  MemberId lagged;
  for (const auto& id : cluster.ids()) {
    if (id != leader) {
      lagged = id;
      break;
    }
  }
  cluster.network()->SetNodeReplicationLag(lagged, 30'000);

  RaftConsensus* lead = cluster.node(leader)->consensus();
  OpId last;
  for (int i = 0; i < 120; ++i) {
    auto opid =
        lead->Replicate(EntryType::kNoOp, "p" + std::to_string(i));
    if (opid.ok()) last = *opid;
    cluster.loop()->RunFor(5'000);
    if (lead->role() != RaftRole::kLeader) break;  // jitter cost an election
  }
  ASSERT_GT(last.index, 0u);
  // Let the ring settle and the lagged follower drain its backlog, then
  // push one more entry through whoever leads now and wait for it: its
  // commit proves the whole surviving prefix is committed too.
  cluster.network()->SetNodeReplicationLag(lagged, 0);
  cluster.network()->SetLossRate(0.0);
  const MemberId final_leader = cluster.WaitForLeader(60'000'000);
  ASSERT_FALSE(final_leader.empty());
  RaftConsensus* fin = cluster.node(final_leader)->consensus();
  auto marker = fin->Replicate(EntryType::kNoOp, "fin");
  ASSERT_TRUE(marker.ok());
  for (int i = 0; i < 600 && !fin->IsCommitted(*marker); ++i) {
    cluster.loop()->RunFor(100'000);
  }
  ASSERT_TRUE(fin->IsCommitted(*marker));
  // Every node converges on an identical log prefix through the window
  // machinery (stale acks dropped, rewinds cancel suffixes).
  const OpId committed = fin->commit_marker();
  EXPECT_GE(committed.index, marker->index);
  for (const auto& id : cluster.ids()) {
    RaftConsensus* c = cluster.node(id)->consensus();
    for (int i = 0; i < 600 && c->commit_marker() < committed; ++i) {
      cluster.loop()->RunFor(100'000);
    }
    EXPECT_GE(c->commit_marker(), committed) << id;
    for (uint64_t index = 1; index <= committed.index; ++index) {
      auto mine = cluster.node(final_leader)->log()->Read(index);
      auto theirs = cluster.node(id)->log()->Read(index);
      ASSERT_TRUE(mine.ok() && theirs.ok()) << id << " @" << index;
      ASSERT_EQ(mine->id, theirs->id) << id << " @" << index;
      ASSERT_EQ(mine->payload, theirs->payload) << id << " @" << index;
    }
  }
}

}  // namespace
}  // namespace myraft::raft

// Unit tests for the metrics registry: find-or-create semantics, pointer
// stability, snapshot accessors, and the text/JSON exposition formats the
// sim harness and bench drivers consume.

#include <gtest/gtest.h>

#include <string>

#include "util/metrics.h"

namespace myraft::metrics {
namespace {

TEST(MetricRegistryTest, FindOrCreateReturnsStablePointers) {
  MetricRegistry registry;
  Counter* c = registry.GetCounter("raft.heartbeats_sent");
  c->Increment(3);
  // Re-resolving the same name (e.g. a component restarting on a
  // long-lived registry) returns the same metric, history intact.
  EXPECT_EQ(registry.GetCounter("raft.heartbeats_sent"), c);
  EXPECT_EQ(c->value(), 3u);

  Gauge* g = registry.GetGauge("log_cache.compressed_bytes");
  g->Set(100);
  g->Add(-40);
  EXPECT_EQ(registry.GetGauge("log_cache.compressed_bytes"), g);
  EXPECT_EQ(g->value(), 60);

  HistogramMetric* h = registry.GetHistogram("server.commit_latency_us");
  h->Record(250);
  h->Record(750);
  EXPECT_EQ(registry.GetHistogram("server.commit_latency_us"), h);
  EXPECT_EQ(h->snapshot().count(), 2u);
  EXPECT_EQ(h->snapshot().max(), 750u);
}

TEST(MetricRegistryTest, FindReturnsNullForUnregisteredNames) {
  MetricRegistry registry;
  registry.GetCounter("a.counter");
  EXPECT_NE(registry.FindCounter("a.counter"), nullptr);
  EXPECT_EQ(registry.FindCounter("a.other"), nullptr);
  EXPECT_EQ(registry.FindGauge("a.counter"), nullptr);  // wrong kind
  EXPECT_EQ(registry.FindHistogram("a.counter"), nullptr);
}

TEST(MetricRegistryTest, CountAndSortedNames) {
  MetricRegistry registry;
  registry.GetGauge("b.gauge");
  registry.GetCounter("c.counter");
  registry.GetHistogram("a.histogram");
  EXPECT_EQ(registry.MetricCount(), 3u);
  const std::vector<std::string> names = registry.Names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "a.histogram");
  EXPECT_EQ(names[1], "b.gauge");
  EXPECT_EQ(names[2], "c.counter");
}

TEST(MetricRegistryTest, ToTextOneLinePerMetric) {
  MetricRegistry registry;
  registry.GetCounter("raft.elections_won")->Increment(2);
  registry.GetGauge("server.applier_lag_entries")->Set(-5);
  registry.GetHistogram("raft.commit_latency_us")->Record(100);
  const std::string text = registry.ToText();
  EXPECT_NE(text.find("raft.elections_won counter 2"), std::string::npos)
      << text;
  EXPECT_NE(text.find("server.applier_lag_entries gauge -5"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("raft.commit_latency_us"), std::string::npos) << text;
}

TEST(MetricRegistryTest, ToJsonShapes) {
  MetricRegistry registry;
  registry.GetCounter("binlog.rotations")->Increment(7);
  registry.GetGauge("log_cache.uncompressed_bytes")->Set(4096);
  HistogramMetric* h = registry.GetHistogram("proxy.relay_latency_us");
  h->Record(10);
  h->Record(30);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"binlog.rotations\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"log_cache.uncompressed_bytes\":4096"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"proxy.relay_latency_us\":{\"count\":2"),
            std::string::npos)
      << json;
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(MetricRegistryTest, EmptyRegistrySerialises) {
  MetricRegistry registry;
  EXPECT_EQ(registry.MetricCount(), 0u);
  EXPECT_EQ(registry.ToJson(), "{}");
  EXPECT_EQ(registry.ToText(), "");
}

}  // namespace
}  // namespace myraft::metrics

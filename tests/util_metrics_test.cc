// Unit tests for the metrics registry: find-or-create semantics, pointer
// stability, snapshot accessors, and the text/JSON exposition formats the
// sim harness and bench drivers consume.

#include <gtest/gtest.h>

#include <string>

#include "util/metrics.h"

namespace myraft::metrics {
namespace {

TEST(MetricRegistryTest, FindOrCreateReturnsStablePointers) {
  MetricRegistry registry;
  Counter* c = registry.GetCounter("raft.heartbeats_sent");
  c->Increment(3);
  // Re-resolving the same name (e.g. a component restarting on a
  // long-lived registry) returns the same metric, history intact.
  EXPECT_EQ(registry.GetCounter("raft.heartbeats_sent"), c);
  EXPECT_EQ(c->value(), 3u);

  Gauge* g = registry.GetGauge("log_cache.compressed_bytes");
  g->Set(100);
  g->Add(-40);
  EXPECT_EQ(registry.GetGauge("log_cache.compressed_bytes"), g);
  EXPECT_EQ(g->value(), 60);

  HistogramMetric* h = registry.GetHistogram("server.commit_latency_us");
  h->Record(250);
  h->Record(750);
  EXPECT_EQ(registry.GetHistogram("server.commit_latency_us"), h);
  EXPECT_EQ(h->snapshot().count(), 2u);
  EXPECT_EQ(h->snapshot().max(), 750u);
}

TEST(MetricRegistryTest, FindReturnsNullForUnregisteredNames) {
  MetricRegistry registry;
  registry.GetCounter("a.counter");
  EXPECT_NE(registry.FindCounter("a.counter"), nullptr);
  EXPECT_EQ(registry.FindCounter("a.other"), nullptr);
  EXPECT_EQ(registry.FindGauge("a.counter"), nullptr);  // wrong kind
  EXPECT_EQ(registry.FindHistogram("a.counter"), nullptr);
}

TEST(MetricRegistryTest, CountAndSortedNames) {
  MetricRegistry registry;
  registry.GetGauge("b.gauge");
  registry.GetCounter("c.counter");
  registry.GetHistogram("a.histogram");
  EXPECT_EQ(registry.MetricCount(), 3u);
  const std::vector<std::string> names = registry.Names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "a.histogram");
  EXPECT_EQ(names[1], "b.gauge");
  EXPECT_EQ(names[2], "c.counter");
}

TEST(MetricRegistryTest, ToTextOneLinePerMetric) {
  MetricRegistry registry;
  registry.GetCounter("raft.elections_won")->Increment(2);
  registry.GetGauge("server.applier_lag_entries")->Set(-5);
  registry.GetHistogram("raft.commit_latency_us")->Record(100);
  const std::string text = registry.ToText();
  EXPECT_NE(text.find("raft.elections_won counter 2"), std::string::npos)
      << text;
  EXPECT_NE(text.find("server.applier_lag_entries gauge -5"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("raft.commit_latency_us"), std::string::npos) << text;
}

TEST(MetricRegistryTest, ToJsonShapes) {
  MetricRegistry registry;
  registry.GetCounter("binlog.rotations")->Increment(7);
  registry.GetGauge("log_cache.uncompressed_bytes")->Set(4096);
  HistogramMetric* h = registry.GetHistogram("proxy.relay_latency_us");
  h->Record(10);
  h->Record(30);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"binlog.rotations\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"log_cache.uncompressed_bytes\":4096"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"proxy.relay_latency_us\":{\"count\":2"),
            std::string::npos)
      << json;
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(MetricRegistryTest, EmptyRegistrySerialises) {
  MetricRegistry registry;
  EXPECT_EQ(registry.MetricCount(), 0u);
  EXPECT_EQ(registry.ToJson(), "{}");
  EXPECT_EQ(registry.ToText(), "");
}

TEST(MetricSnapshotTest, SnapshotIsDetachedFromLiveMetrics) {
  MetricRegistry registry;
  Counter* c = registry.GetCounter("raft.entries_appended");
  Gauge* g = registry.GetGauge("server.applier_lag_entries");
  HistogramMetric* h = registry.GetHistogram("server.commit_latency_us");
  c->Increment(10);
  g->Set(3);
  h->Record(500);

  const MetricSnapshot snap = registry.Snapshot();
  c->Increment(90);  // must not show up in the detached copy
  g->Set(-1);
  h->Record(9'999);
  EXPECT_EQ(snap.counters.at("raft.entries_appended"), 10u);
  EXPECT_EQ(snap.gauges.at("server.applier_lag_entries"), 3);
  EXPECT_EQ(snap.histograms.at("server.commit_latency_us").count(), 1u);
  EXPECT_NE(snap.ToJson().find("\"raft.entries_appended\":10"),
            std::string::npos);
}

TEST(MetricSnapshotTest, DeltaSinceWindowsCountersAndKeepsGaugeLevels) {
  MetricRegistry registry;
  Counter* c = registry.GetCounter("raft.heartbeats_sent");
  Gauge* g = registry.GetGauge("log_cache.compressed_bytes");
  HistogramMetric* h = registry.GetHistogram("raft.append_batch_entries");
  c->Increment(4);
  g->Set(100);
  h->Record(8);
  const MetricSnapshot earlier = registry.Snapshot();

  c->Increment(6);
  g->Set(250);
  h->Record(16);
  h->Record(32);
  const MetricSnapshot window = registry.Snapshot().DeltaSince(earlier);
  // Counters and histograms carry only the between-snapshot activity;
  // gauges keep their instantaneous level.
  EXPECT_EQ(window.counters.at("raft.heartbeats_sent"), 6u);
  EXPECT_EQ(window.gauges.at("log_cache.compressed_bytes"), 250);
  EXPECT_EQ(window.histograms.at("raft.append_batch_entries").count(), 2u);
  EXPECT_EQ(window.histograms.at("raft.append_batch_entries").min(), 16u);
}

TEST(MetricSnapshotTest, MergeFromRollsUpAcrossNodes) {
  MetricRegistry node_a;
  MetricRegistry node_b;
  node_a.GetCounter("server.txns_applied")->Increment(30);
  node_b.GetCounter("server.txns_applied")->Increment(12);
  node_a.GetGauge("server.applier_lag_entries")->Set(5);
  node_b.GetGauge("server.applier_lag_entries")->Set(7);
  node_a.GetHistogram("server.apply_txn_us")->Record(100);
  node_b.GetHistogram("server.apply_txn_us")->Record(300);
  node_b.GetCounter("server.reads_served")->Increment(2);  // b-only metric

  MetricSnapshot rollup = node_a.Snapshot();
  rollup.MergeFrom(node_b.Snapshot());
  EXPECT_EQ(rollup.counters.at("server.txns_applied"), 42u);
  EXPECT_EQ(rollup.gauges.at("server.applier_lag_entries"), 12);
  EXPECT_EQ(rollup.histograms.at("server.apply_txn_us").count(), 2u);
  EXPECT_EQ(rollup.histograms.at("server.apply_txn_us").max(), 300u);
  EXPECT_EQ(rollup.counters.at("server.reads_served"), 2u);
}

TEST(MetricRegistryTest, PrefixNamespacesSnapshotsAndSerialisation) {
  MetricRegistry registry;
  registry.SetPrefix("shard.rs3.");
  // Hot-path lookups keep using the bare name; only reporting is
  // namespaced.
  registry.GetCounter("raft.commits")->Increment(7);
  EXPECT_NE(registry.FindCounter("raft.commits"), nullptr);
  EXPECT_EQ(registry.FindCounter("shard.rs3.raft.commits"), nullptr);

  const MetricSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("shard.rs3.raft.commits"), 7u);
  EXPECT_EQ(snap.counters.count("raft.commits"), 0u);
  EXPECT_EQ(registry.Names(), std::vector<std::string>{
                                  "shard.rs3.raft.commits"});
  EXPECT_NE(registry.ToJson().find("\"shard.rs3.raft.commits\":7"),
            std::string::npos);
  EXPECT_NE(registry.ToText().find("shard.rs3.raft.commits counter 7"),
            std::string::npos);
}

TEST(MetricSnapshotTest, PrefixedRegistriesMergeWithoutCollisions) {
  // Two shards host the same counter family; at fleet scope the merged
  // roll-up must keep them apart instead of summing them ambiguously.
  MetricRegistry shard_a;
  MetricRegistry shard_b;
  shard_a.SetPrefix("shard.rs0.");
  shard_b.SetPrefix("shard.rs1.");
  shard_a.GetCounter("raft.commits")->Increment(30);
  shard_b.GetCounter("raft.commits")->Increment(12);

  MetricSnapshot fleet = shard_a.Snapshot();
  fleet.MergeFrom(shard_b.Snapshot());
  EXPECT_EQ(fleet.counters.at("shard.rs0.raft.commits"), 30u);
  EXPECT_EQ(fleet.counters.at("shard.rs1.raft.commits"), 12u);
  EXPECT_EQ(fleet.counters.count("raft.commits"), 0u);
}

}  // namespace
}  // namespace myraft::metrics

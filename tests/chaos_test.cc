// Chaos harness self-tests (DESIGN.md §11): determinism of the schedule
// generator and runner, the checker self-test that seeds a known
// durability bug and asserts the harness catches and minimizes it, and
// pinned regression schedules from the bug crop the harness found.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "chaos/minimizer.h"
#include "chaos/nemesis.h"
#include "chaos/runner.h"
#include "chaos/schedule.h"
#include "flexiraft/flexiraft.h"

namespace myraft::chaos {
namespace {

const raft::QuorumEngine* FlexiEngine() {
  static auto* engine = new flexiraft::FlexiRaftQuorumEngine(
      {flexiraft::QuorumMode::kSingleRegionDynamic});
  return engine;
}

/// The bench_chaos topology: 3 regions x (db + 2 logtailers) + 1 learner.
ChaosOptions PaperTopologyOptions() {
  ChaosOptions options;
  options.cluster.topology.db_regions = 3;
  options.cluster.topology.logtailers_per_db = 2;
  options.cluster.topology.learners = 1;
  return options;
}

FaultStep Step(uint64_t at, FaultAction action,
               std::vector<std::string> targets) {
  FaultStep step;
  step.at_micros = at;
  step.action = action;
  step.targets = std::move(targets);
  return step;
}

TEST(ChaosScheduleTest, GenerationAndTextAreDeterministic) {
  const std::vector<MemberId> members =
      TopologyMemberIds(PaperTopologyOptions().cluster);
  const NemesisOptions nemesis;
  const Schedule a = GenerateSchedule(42, members, nemesis);
  const Schedule b = GenerateSchedule(42, members, nemesis);
  ASSERT_FALSE(a.steps.empty());
  EXPECT_EQ(a.ToText(), b.ToText());
  // The emitted text is the replay format: it must round-trip exactly.
  auto parsed = Schedule::Parse(a.ToText());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->ToText(), a.ToText());
  // Different seeds diverge (sanity that the seed is actually used).
  EXPECT_NE(GenerateSchedule(43, members, nemesis).ToText(), a.ToText());
}

TEST(ChaosScheduleTest, ClockFaultStepsRoundTrip) {
  // The clock family uses the third step shape (target + param); the
  // replay format must round-trip it exactly, heals included.
  Schedule schedule;
  schedule.seed = 1;
  schedule.duration_micros = 2'000'000;
  schedule.quiesce_interval_micros = 1'000'000;
  FaultStep skew = Step(100'000, FaultAction::kClockSkew, {"db0"});
  skew.param = 750'000;
  FaultStep rate = Step(200'000, FaultAction::kClockRate, {"@leader"});
  rate.param = 1'500'000;
  schedule.steps = {skew, rate,
                    Step(900'000, FaultAction::kClockHeal, {"*"})};
  auto parsed = Schedule::Parse(schedule.ToText());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->ToText(), schedule.ToText());
  EXPECT_EQ(parsed->steps[0].param, 750'000u);
  EXPECT_EQ(parsed->steps[1].targets, std::vector<std::string>{"@leader"});
}

TEST(ChaosTopologyTest, MemberIdsMatchBootstrappedCluster) {
  // The nemesis targets members by name before the cluster exists;
  // TopologyMemberIds must stay pinned to ClusterHarness::Bootstrap.
  const ChaosOptions options = PaperTopologyOptions();
  sim::ClusterHarness cluster(options.cluster, FlexiEngine());
  ASSERT_TRUE(cluster.Bootstrap().ok());
  std::vector<MemberId> ids = cluster.ids();
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, TopologyMemberIds(options.cluster));
}

TEST(ChaosRunnerTest, IdenticalSeedsProduceByteIdenticalReports) {
  const ChaosOptions options = PaperTopologyOptions();
  NemesisOptions nemesis;
  nemesis.duration_micros = 6'000'000;
  nemesis.quiesce_interval_micros = 3'000'000;
  const Schedule schedule =
      GenerateSchedule(5, TopologyMemberIds(options.cluster), nemesis);
  ChaosRunner runner(options, FlexiEngine());
  const std::string first = runner.Run(schedule).ToText();
  const std::string second = runner.Run(schedule).ToText();
  EXPECT_EQ(first, second);
}

/// The checker self-test schedule: power-fail the whole single-region
/// ring between two deferred-sync ticks, then bring back only the
/// logtailers so they elect among themselves while the old primary's
/// durable log is offline. The primary rejoins at the quiescent window.
Schedule SelfTestSchedule() {
  Schedule schedule;
  schedule.seed = 7;
  schedule.duration_micros = 2'000'000;
  schedule.quiesce_interval_micros = 2'000'000;
  schedule.steps = {
      Step(250'000, FaultAction::kCrashTorn, {"db0"}),
      Step(250'000, FaultAction::kCrashTorn, {"lt0a"}),
      Step(250'000, FaultAction::kCrashTorn, {"lt0b"}),
      Step(300'000, FaultAction::kRestart, {"lt0a"}),
      Step(300'000, FaultAction::kRestart, {"lt0b"}),
  };
  return schedule;
}

ChaosOptions SelfTestOptions() {
  // One region: db0 + lt0a + lt0b. The data quorum is 2-of-3, so the
  // primary commits with a single logtailer ack.
  ChaosOptions options;
  options.cluster.topology.db_regions = 1;
  options.cluster.topology.logtailers_per_db = 2;
  options.cluster.topology.learners = 0;
  options.write_interval_micros = 5'000;
  return options;
}

TEST(ChaosSelfTest, SeededUnsafeCommitBugIsCaughtAndMinimized) {
  // Checker self-test: seed a known durability bug — the commit quorum
  // counts received-but-unsynced logtailer acks (skipping the min() with
  // the durable index) — and assert the harness catches it. Writes acked
  // since the logtailers' last sync tick survive only on the primary;
  // after the torn crash the revived logtailers elect on rewound logs and
  // commit a conflicting suffix, and the rejoining primary truncates the
  // acked tail away.
  ChaosOptions options = SelfTestOptions();
  options.cluster.raft.unsafe_commit_on_received = true;
  const Schedule schedule = SelfTestSchedule();

  ChaosRunner runner(options, FlexiEngine());
  const ChaosReport report = runner.Run(schedule);
  ASSERT_FALSE(report.passed) << report.ToText();
  EXPECT_GT(FailureSignature(report).count("Durability"), 0u)
      << report.ToText();

  // ddmin must shrink the repro to at most 5 steps while keeping the
  // failure signature.
  const MinimizeResult minimized =
      MinimizeSchedule(options, FlexiEngine(), schedule);
  EXPECT_FALSE(minimized.report.passed);
  EXPECT_LE(minimized.schedule.steps.size(), 5u)
      << minimized.schedule.ToText();
}

TEST(ChaosSelfTest, SafeCommitRuleSurvivesTheSameSchedule) {
  // Negative control / durability regression repro: the identical
  // schedule against the real commit rule (acked = min(received,
  // durable)) loses nothing — every acked write has a durable copy on a
  // logtailer that torn crashes cannot eat, and the up-to-date vote
  // check guarantees the longest-log logtailer wins the interim term.
  const ChaosOptions options = SelfTestOptions();
  ChaosRunner runner(options, FlexiEngine());
  const ChaosReport report = runner.Run(SelfTestSchedule());
  EXPECT_TRUE(report.passed) << report.ToText();
  EXPECT_GT(report.writes_acked, 0u);
}

TEST(ChaosRegressionTest, SingleVoterCommitRetiresEveryWrite) {
  // Found by the harness: when a region's data quorum is the leader
  // alone, the commit marker advances synchronously inside Replicate —
  // before the server registers the pending client write. The last write
  // before a lull was never retired: the client timed out and the
  // primary's engine stayed one transaction behind its own log forever.
  ChaosOptions options;
  options.cluster.topology.db_regions = 3;
  options.cluster.topology.logtailers_per_db = 0;
  options.cluster.topology.learners = 0;
  options.write_interval_micros = 5'000;

  Schedule schedule;
  schedule.seed = 7;
  schedule.duration_micros = 2'000'000;
  schedule.quiesce_interval_micros = 1'000'000;
  schedule.steps = {
      Step(250'000, FaultAction::kCrashTorn, {"db1"}),
      Step(250'000, FaultAction::kCrashTorn, {"db2"}),
      Step(252'000, FaultAction::kCrashTorn, {"@leader"}),
      Step(500'000, FaultAction::kRestart, {"*"}),
  };

  ChaosRunner runner(options, FlexiEngine());
  const ChaosReport report = runner.Run(schedule);
  EXPECT_TRUE(report.passed) << report.ToText();
  EXPECT_GT(report.writes_acked, 0u);
}

TEST(ChaosRegressionTest, AsymmetricLeaderIsolationFailsOver) {
  // Pinned asymmetric-partition election repro: every outbound link of
  // the leader fails one-way, so it keeps hearing the cluster while the
  // cluster stops hearing it. A replacement must be elected and the
  // stale leader dethroned without two leaders ever sharing a term — the
  // failure mode the evidence-coverage election rule fixed.
  const ChaosOptions options = PaperTopologyOptions();
  Schedule schedule;
  schedule.seed = 3;
  schedule.duration_micros = 4'000'000;
  schedule.quiesce_interval_micros = 2'000'000;
  for (const MemberId& id : TopologyMemberIds(options.cluster)) {
    schedule.steps.push_back(
        Step(100'000, FaultAction::kOneWayCut, {"@leader", id}));
  }
  ChaosRunner runner(options, FlexiEngine());
  const ChaosReport report = runner.Run(schedule);
  EXPECT_TRUE(report.passed) << report.ToText();
  EXPECT_GT(report.writes_acked, 0u);
  // The failover actually happened (a real election ran).
  EXPECT_NE(runner.TraceJsonl().find("election_started"), std::string::npos);
}

TEST(ChaosRegressionTest, TornLeaderCrashDuringCoalescedSyncLosesNothing) {
  // Group-commit durability schedule: power-fail the leader mid-stream,
  // squarely inside the window where a burst of appends awaits its
  // coalesced fsync. The leader's own quorum ack is gated on that sync
  // completing, so every write acked before the torn crash must hold a
  // durable quorum copy; the checker's ledger has to stay clean across
  // the promotion and the old leader's rejoin truncation.
  ChaosOptions options = PaperTopologyOptions();
  options.write_interval_micros = 2'000;  // dense enough to straddle syncs

  Schedule schedule;
  schedule.seed = 11;
  schedule.duration_micros = 3'000'000;
  schedule.quiesce_interval_micros = 1'500'000;
  schedule.steps = {
      Step(301'000, FaultAction::kCrashTorn, {"@leader"}),
      Step(900'000, FaultAction::kRestart, {"*"}),
  };

  ChaosRunner runner(options, FlexiEngine());
  const ChaosReport report = runner.Run(schedule);
  EXPECT_TRUE(report.passed) << report.ToText();
  EXPECT_GT(report.writes_acked, 0u);
}

// --- LeaseGuard lease chaos schedules (§13) ---------------------------
//
// Each schedule runs with leases enabled and the concurrent read
// workload on (one leader read of an acked key every 50ms by default);
// the checker's StaleReadUnderLease invariant audits every successful
// read against the ledger. Refusing a read under a lost lease is
// availability, never a violation — serving yesterday's value is.

ChaosOptions LeaseOptions() {
  ChaosOptions options = PaperTopologyOptions();
  options.cluster.raft.enable_leader_leases = true;
  options.write_interval_micros = 10'000;
  options.read_interval_micros = 20'000;
  return options;
}

TEST(ChaosLeaseTest, LeaseExpiryRacingLeaderCrashServesNoStaleReads) {
  // The expiry/crash race: skew the leaseholder's clock forward so its
  // own lease view expires instantly mid-serve, then power-fail it
  // before any renewal lands. The successor must win the term and the
  // read ledger must stay exact across the handoff window.
  Schedule schedule;
  schedule.seed = 13;
  schedule.duration_micros = 4'000'000;
  schedule.quiesce_interval_micros = 2'000'000;
  FaultStep skew = Step(300'000, FaultAction::kClockSkew, {"@leader"});
  skew.param = 2'000'000;  // +2s: past lease expiry in one jump
  schedule.steps = {
      skew,
      Step(320'000, FaultAction::kCrashTorn, {"@leader"}),
      Step(1'200'000, FaultAction::kRestart, {"*"}),
      Step(1'200'000, FaultAction::kClockHeal, {"*"}),
  };

  ChaosRunner runner(LeaseOptions(), FlexiEngine());
  const ChaosReport report = runner.Run(schedule);
  EXPECT_TRUE(report.passed) << report.ToText();
  EXPECT_GT(report.writes_acked, 0u);
  EXPECT_GT(report.reads_ok, 0u) << report.ToText();
}

TEST(ChaosLeaseTest, DriftBeyondMarginNeverServesStale) {
  // Rate drift past the configured margin on both sides of the grant:
  // a 2x-fast leader burns through its own lease view early (renewal
  // pressure), and a 2x-fast voter's election timer expires while the
  // leader still believes that voter's promise stands — the margin is
  // genuinely exceeded, and safety must fall to the quorum-intersection
  // backstop (the rival still needs an undrifted voter). A mid-run
  // leader crash forces the deferred-handoff window under drift.
  Schedule schedule;
  schedule.seed = 17;
  schedule.duration_micros = 5'000'000;
  schedule.quiesce_interval_micros = 2'500'000;
  FaultStep leader_rate = Step(200'000, FaultAction::kClockRate, {"@leader"});
  leader_rate.param = 2'000'000;  // 2x nominal
  FaultStep voter_rate = Step(200'000, FaultAction::kClockRate, {"lt1a"});
  voter_rate.param = 2'000'000;
  schedule.steps = {
      leader_rate,
      voter_rate,
      Step(1'500'000, FaultAction::kCrashTorn, {"@leader"}),
      Step(2'200'000, FaultAction::kRestart, {"*"}),
      Step(2'200'000, FaultAction::kClockHeal, {"*"}),
  };

  ChaosRunner runner(LeaseOptions(), FlexiEngine());
  const ChaosReport report = runner.Run(schedule);
  EXPECT_TRUE(report.passed) << report.ToText();
  EXPECT_GT(report.reads_ok, 0u) << report.ToText();
  EXPECT_GT(report.reads_lease, 0u) << report.ToText();
}

TEST(ChaosLeaseTest, PartitionedLeaseholderRefusesButNeverLies) {
  // Partition the leaseholder away from every voter. Its standing
  // grants run out within one lease duration and cannot renew; from
  // then on it must refuse lease reads (falling back to quorum rounds
  // that cannot complete) rather than serve values the majority side's
  // new leader may be overwriting. Reads during the partition may fail
  // — the invariant only audits the ones that claimed success.
  Schedule schedule;
  schedule.seed = 19;
  schedule.duration_micros = 5'000'000;
  schedule.quiesce_interval_micros = 2'500'000;
  schedule.steps = {
      Step(400'000, FaultAction::kPartition, {"@leader"}),
      Step(2'000'000, FaultAction::kHealAll, {}),
  };

  ChaosRunner runner(LeaseOptions(), FlexiEngine());
  const ChaosReport report = runner.Run(schedule);
  EXPECT_TRUE(report.passed) << report.ToText();
  EXPECT_GT(report.writes_acked, 0u);
  // Lease fast-path reads happened before the partition bit.
  EXPECT_GT(report.reads_lease, 0u) << report.ToText();
}

TEST(ChaosLeaseTest, GrantorCrashRestartRacingElectionServesNoStaleReads) {
  // The restart hole (§13.6): a voter's grant promise lives only in
  // volatile stickiness state. Crash-restart one grantor per region
  // inside the grant window, then partition the leaseholder — without
  // the startup vote embargo the restarted voters would help elect a
  // rival while the cut-off leaseholder still holds an unexpired commit
  // quorum of grants and is serving local reads. The embargo makes the
  // restarted voters sit out past every grant they could have made, so
  // the ledger must stay exact.
  Schedule schedule;
  schedule.seed = 23;
  schedule.duration_micros = 5'000'000;
  schedule.quiesce_interval_micros = 2'500'000;
  schedule.steps = {
      Step(400'000, FaultAction::kCrashTorn, {"lt0a", "lt1a", "lt2a"}),
      Step(450'000, FaultAction::kRestart, {"lt0a", "lt1a", "lt2a"}),
      Step(500'000, FaultAction::kPartition, {"@leader"}),
      Step(2'200'000, FaultAction::kHealAll, {}),
  };

  ChaosRunner runner(LeaseOptions(), FlexiEngine());
  const ChaosReport report = runner.Run(schedule);
  EXPECT_TRUE(report.passed) << report.ToText();
  EXPECT_GT(report.writes_acked, 0u);
  // Lease fast-path reads happened before the partition bit.
  EXPECT_GT(report.reads_lease, 0u) << report.ToText();
}

TEST(ChaosLeaseTest, GeneratedClockFaultCorpusStaysClean) {
  // End-to-end nemesis coverage: a generated schedule with the clock
  // family enabled, run with leases on. Pins the generator's clock-step
  // shapes (skew/rate with params, paired heals) through the runner.
  NemesisOptions nemesis;
  nemesis.clock_faults = true;
  const ChaosOptions options = LeaseOptions();
  const Schedule schedule = GenerateSchedule(
      21, TopologyMemberIds(options.cluster), nemesis);
  const bool has_clock_step = std::any_of(
      schedule.steps.begin(), schedule.steps.end(), [](const FaultStep& s) {
        return s.action == FaultAction::kClockSkew ||
               s.action == FaultAction::kClockRate;
      });
  EXPECT_TRUE(has_clock_step) << schedule.ToText();

  ChaosRunner runner(options, FlexiEngine());
  const ChaosReport report = runner.Run(schedule);
  EXPECT_TRUE(report.passed) << report.ToText();
  EXPECT_GT(report.reads_ok, 0u) << report.ToText();
}

// --- Membership nemesis + Config Safety (§15) -------------------------
//
// Reconfig schedules run with logless reconfiguration on; the checker's
// ConfigSafety invariant audits every quiescent window for config
// identity uniqueness and for pairs of live configs whose voter sets
// admit disjoint majorities. Leader-side rejections of racing changes
// are legal (counted as skipped steps) — configs that both commit and
// conflict are not.

ChaosOptions ReconfigOptions() {
  ChaosOptions options = PaperTopologyOptions();
  options.cluster.raft.enable_logless_reconfig = true;
  return options;
}

TEST(ChaosScheduleTest, ReconfigStepsRoundTrip) {
  // The membership family uses the two-token step shape (subcmd +
  // member); the replay format must round-trip it exactly.
  Schedule schedule;
  schedule.seed = 1;
  schedule.duration_micros = 3'000'000;
  schedule.quiesce_interval_micros = 1'500'000;
  schedule.steps = {
      Step(200'000, FaultAction::kReconfig, {"remove", "lt1a"}),
      Step(500'000, FaultAction::kReconfig, {"demote", "lt2b"}),
      Step(1'400'000, FaultAction::kReconfig, {"add", "lt1a"}),
      Step(1'600'000, FaultAction::kReconfig, {"promote", "lt2b"}),
  };
  auto parsed = Schedule::Parse(schedule.ToText());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->ToText(), schedule.ToText());
  EXPECT_EQ(parsed->steps[0].targets,
            (std::vector<std::string>{"remove", "lt1a"}));
}

TEST(ChaosReconfigTest, ReconfigAcrossFailoverKeepsConfigSafety) {
  // Pinned §15 schedule: drop a voter, then partition away the leader
  // that performed the drop, forcing a successor to inherit the config
  // via the (term, version) ordering — config_term rebase, not a log
  // replay — and finally re-add the member through the new leader.
  Schedule schedule;
  schedule.seed = 29;
  schedule.duration_micros = 5'000'000;
  schedule.quiesce_interval_micros = 2'500'000;
  schedule.steps = {
      Step(300'000, FaultAction::kReconfig, {"remove", "lt1a"}),
      Step(600'000, FaultAction::kPartition, {"@leader"}),
      Step(2'000'000, FaultAction::kHealAll, {}),
      Step(2'600'000, FaultAction::kReconfig, {"add", "lt1a"}),
  };
  ChaosRunner runner(ReconfigOptions(), FlexiEngine());
  const ChaosReport report = runner.Run(schedule);
  EXPECT_TRUE(report.passed) << report.ToText();
  EXPECT_GT(report.writes_acked, 0u);
}

TEST(ChaosReconfigTest, ConcurrentChangeStormStaysSafe) {
  // Satellite regression for the stacked-config bug crop: a burst of
  // membership changes lands faster than install quorums can close the
  // pending windows. Every racing change must either commit alone or be
  // refused at the leader — the old unguarded path stacked them and the
  // checker's ConfigSafety caught the divergent identities.
  Schedule schedule;
  schedule.seed = 31;
  schedule.duration_micros = 5'000'000;
  schedule.quiesce_interval_micros = 2'500'000;
  schedule.steps = {
      Step(300'000, FaultAction::kReconfig, {"demote", "lt1a"}),
      Step(300'500, FaultAction::kReconfig, {"demote", "lt2a"}),
      Step(301'000, FaultAction::kReconfig, {"remove", "lt1b"}),
      Step(1'500'000, FaultAction::kReconfig, {"promote", "lt1a"}),
      Step(1'500'000, FaultAction::kReconfig, {"promote", "lt2a"}),
      Step(2'600'000, FaultAction::kReconfig, {"add", "lt1b"}),
  };
  ChaosRunner runner(ReconfigOptions(), FlexiEngine());
  const ChaosReport report = runner.Run(schedule);
  EXPECT_TRUE(report.passed) << report.ToText();
  EXPECT_GT(report.writes_acked, 0u);
}

TEST(ChaosReconfigTest, GeneratedMembershipCorpusKeepsConfigSafety) {
  // End-to-end nemesis coverage: a generated schedule with the
  // membership family enabled, run with logless reconfiguration on.
  // Pins the generator's reconfig step shapes (remove always paired
  // with a later re-add; demote with a heal-gated promote) through the
  // runner and the ConfigSafety audit.
  NemesisOptions nemesis;
  nemesis.reconfig_faults = true;
  const ChaosOptions options = ReconfigOptions();
  const Schedule schedule = GenerateSchedule(
      37, TopologyMemberIds(options.cluster), nemesis);
  const bool has_reconfig_step = std::any_of(
      schedule.steps.begin(), schedule.steps.end(), [](const FaultStep& s) {
        return s.action == FaultAction::kReconfig;
      });
  EXPECT_TRUE(has_reconfig_step) << schedule.ToText();

  ChaosRunner runner(options, FlexiEngine());
  const ChaosReport report = runner.Run(schedule);
  EXPECT_TRUE(report.passed) << report.ToText();
  EXPECT_GT(report.writes_acked, 0u);

  // Determinism holds for the new family too (CI replays by seed).
  EXPECT_EQ(GenerateSchedule(37, TopologyMemberIds(options.cluster), nemesis)
                .ToText(),
            schedule.ToText());
}

TEST(ChaosRegressionTest, Seed9DoubleLeaderScheduleStaysClean) {
  // The generated corpus schedule that originally exposed the FlexiRaft
  // double-leader (two candidates aggregating divergent stale last-leader
  // views won the same term with disjoint quorums), replayed verbatim.
  const ChaosOptions options = PaperTopologyOptions();
  const Schedule schedule = GenerateSchedule(
      9, TopologyMemberIds(options.cluster), NemesisOptions{});
  ChaosRunner runner(options, FlexiEngine());
  const ChaosReport report = runner.Run(schedule);
  EXPECT_TRUE(report.passed) << report.ToText();
}

}  // namespace
}  // namespace myraft::chaos

// Unit tests for the Raft building blocks: MemLog, LogCache,
// ConsensusMetadataStore and the majority quorum engine.

#include <gtest/gtest.h>

#include "raft/consensus_metadata.h"
#include "raft/log_abstraction.h"
#include "raft/log_cache.h"
#include "raft/quorum.h"
#include "util/random.h"

namespace myraft::raft {
namespace {

LogEntry E(uint64_t term, uint64_t index, std::string payload = "p") {
  return LogEntry::Make({term, index}, EntryType::kTransaction,
                        std::move(payload));
}

TEST(MemLogTest, AppendReadTruncate) {
  MemLog log;
  EXPECT_EQ(log.LastOpId(), kZeroOpId);
  ASSERT_TRUE(log.Append(E(1, 1)).ok());
  ASSERT_TRUE(log.Append(E(1, 2)).ok());
  ASSERT_TRUE(log.Append(E(2, 3)).ok());
  EXPECT_FALSE(log.Append(E(2, 5)).ok());  // gap
  EXPECT_EQ(log.LastOpId(), (OpId{2, 3}));
  EXPECT_EQ(log.FirstIndex(), 1u);
  EXPECT_EQ((*log.OpIdAt(2)).term, 1u);

  auto batch = log.ReadBatch(2, 10, UINT64_MAX);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->size(), 2u);

  ASSERT_TRUE(log.TruncateAfter(1).ok());
  EXPECT_EQ(log.LastOpId(), (OpId{1, 1}));
  EXPECT_FALSE(log.Read(2).ok());
}

TEST(LogCacheTest, PutGetRoundTrip) {
  LogCache cache(1 << 20);
  const LogEntry e = E(1, 1, std::string(1000, 'x'));
  cache.Put(e);
  auto got = cache.Get(1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, e);
  EXPECT_TRUE(cache.Get(2).status().IsNotFound());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(LogCacheTest, CompressionShrinksRepetitivePayloads) {
  LogCache cache(1 << 20);
  cache.Put(E(1, 1, std::string(100'000, 'z')));
  EXPECT_LT(cache.size_bytes(), 10'000u);
  EXPECT_LT(cache.stats().compressed_bytes, cache.stats().uncompressed_bytes);
}

TEST(LogCacheTest, EvictsFromHeadWhenOverCapacity) {
  LogCache cache(4000);
  Random rng(3);
  // Random payloads resist compression, forcing evictions.
  for (uint64_t i = 1; i <= 10; ++i) {
    std::string payload(1000, '\0');
    for (char& c : payload) c = static_cast<char>(rng.Next());
    cache.Put(LogEntry::Make({1, i}, EntryType::kTransaction, payload));
  }
  EXPECT_LE(cache.size_bytes(), 4100u);
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_FALSE(cache.Contains(1));  // oldest evicted
  EXPECT_TRUE(cache.Contains(10));  // newest kept
}

TEST(LogCacheTest, OverwriteRetiresReplacedBytes) {
  // Regression: Put over an existing index used to account the new
  // payload without retiring the old one, so overwrites (leader
  // re-proposals, truncate-then-refill) inflated the byte counters
  // without bound.
  LogCache cache(1 << 20);
  cache.Put(E(1, 1, std::string(10'000, 'a')));
  const auto once = cache.stats();
  for (int i = 0; i < 5; ++i) {
    cache.Put(E(2, 1, std::string(10'000, 'a')));
  }
  const auto after = cache.stats();
  EXPECT_EQ(after.compressed_bytes, once.compressed_bytes);
  EXPECT_EQ(after.uncompressed_bytes, once.uncompressed_bytes);
  EXPECT_EQ(cache.size_bytes(), once.compressed_bytes);
  // The surviving entry is the replacement.
  auto got = cache.Get(1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->id.term, 2u);
}

TEST(LogCacheTest, ClearResetsByteCounters) {
  // Regression: Clear() dropped the entries but left the byte counters
  // at their pre-clear values.
  LogCache cache(1 << 20);
  for (uint64_t i = 1; i <= 4; ++i) {
    cache.Put(E(1, i, std::string(5'000, 'q')));
  }
  ASSERT_GT(cache.stats().compressed_bytes, 0u);
  ASSERT_GT(cache.stats().uncompressed_bytes, 0u);
  cache.Clear();
  EXPECT_EQ(cache.size_bytes(), 0u);
  EXPECT_EQ(cache.stats().compressed_bytes, 0u);
  EXPECT_EQ(cache.stats().uncompressed_bytes, 0u);
  // The cumulative counters survive Clear(); only resident gauges reset.
  cache.Get(1);  // miss
  EXPECT_GE(cache.stats().misses, 1u);
}

TEST(LogCacheTest, SharedRegistryAccumulatesAcrossInstances) {
  // A sim node's registry outlives crash/restart cycles: cumulative
  // counters keep accumulating, resident gauges restart from zero.
  metrics::MetricRegistry registry;
  {
    LogCache cache(1 << 20, &registry);
    cache.Put(E(1, 1, std::string(2'000, 'x')));
    cache.Get(1);
    cache.Get(99);
  }
  EXPECT_EQ(registry.FindCounter("log_cache.hits")->value(), 1u);
  EXPECT_EQ(registry.FindCounter("log_cache.misses")->value(), 1u);
  EXPECT_GT(registry.FindGauge("log_cache.compressed_bytes")->value(), 0);
  LogCache reborn(1 << 20, &registry);
  EXPECT_EQ(registry.FindGauge("log_cache.compressed_bytes")->value(), 0);
  EXPECT_EQ(registry.FindGauge("log_cache.uncompressed_bytes")->value(), 0);
  reborn.Get(1);  // miss: new instance starts empty
  EXPECT_EQ(registry.FindCounter("log_cache.misses")->value(), 2u);
}

TEST(LogCacheTest, TruncateAfterDropsSuffix) {
  LogCache cache(1 << 20);
  for (uint64_t i = 1; i <= 5; ++i) cache.Put(E(1, i));
  cache.TruncateAfter(3);
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_FALSE(cache.Contains(4));
  cache.EvictBefore(3);
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
}

TEST(ConsensusMetadataTest, SaveLoadRoundTrip) {
  auto env = NewMemEnv();
  ConsensusMetadataStore store(env.get(), "/cmeta");
  ConsensusMetadata meta;
  meta.current_term = 42;
  meta.voted_for = "db1";
  meta.last_known_leader = "db0";
  meta.last_leader_region = "r0";
  meta.config.config_index = 7;
  meta.config.members.push_back(
      MemberInfo{"db0", "r0", MemberKind::kMySql, RaftMemberType::kVoter});
  meta.config.members.push_back(MemberInfo{"lt0", "r0", MemberKind::kLogtailer,
                                           RaftMemberType::kVoter});
  ASSERT_TRUE(store.Save(meta).ok());
  auto loaded = store.Load();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, meta);
}

TEST(ConsensusMetadataTest, MissingFileLoadsDefaults) {
  auto env = NewMemEnv();
  ConsensusMetadataStore store(env.get(), "/cmeta");
  auto loaded = store.Load();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->current_term, 0u);
  EXPECT_TRUE(loaded->config.members.empty());
}

TEST(ConsensusMetadataTest, CorruptionDetected) {
  auto env = NewMemEnv();
  ConsensusMetadataStore store(env.get(), "/cmeta");
  ConsensusMetadata meta;
  meta.current_term = 1;
  ASSERT_TRUE(store.Save(meta).ok());
  auto contents = env->ReadFileToString("/cmeta");
  ASSERT_TRUE(contents.ok());
  std::string corrupted = *contents;
  corrupted[0] ^= 0x01;
  ASSERT_TRUE(env->WriteStringToFile(corrupted, "/cmeta").ok());
  EXPECT_TRUE(store.Load().status().IsCorruption());
}

MembershipConfig SixVoters() {
  MembershipConfig config;
  for (int i = 0; i < 6; ++i) {
    config.members.push_back(MemberInfo{"m" + std::to_string(i),
                                        i < 3 ? "r0" : "r1",
                                        MemberKind::kMySql,
                                        RaftMemberType::kVoter});
  }
  // A learner never counts toward quorums.
  config.members.push_back(MemberInfo{"learner", "r2", MemberKind::kMySql,
                                      RaftMemberType::kNonVoter});
  return config;
}

TEST(MajorityQuorumTest, RequiresStrictMajorityOfVoters) {
  MajorityQuorumEngine quorum;
  const MembershipConfig config = SixVoters();
  QuorumContext context;
  context.config = &config;
  context.subject = "m0";

  EXPECT_FALSE(quorum.IsCommitQuorumSatisfied(context, {"m0", "m1", "m2"}));
  EXPECT_TRUE(
      quorum.IsCommitQuorumSatisfied(context, {"m0", "m1", "m2", "m3"}));
  // Learners do not count.
  EXPECT_FALSE(quorum.IsCommitQuorumSatisfied(
      context, {"m0", "m1", "m2", "learner"}));
  // Unknown ids do not count.
  EXPECT_FALSE(
      quorum.IsCommitQuorumSatisfied(context, {"m0", "m1", "m2", "ghost"}));

  EXPECT_TRUE(quorum.IsElectionQuorumSatisfied(
      context, {"m0", "m1", "m2", "m3"}));
  EXPECT_FALSE(quorum.IsElectionQuorumSatisfied(context, {"m0", "m1", "m2"}));
}

TEST(MajorityQuorumTest, DoomDetection) {
  MajorityQuorumEngine quorum;
  const MembershipConfig config = SixVoters();
  QuorumContext context;
  context.config = &config;
  context.subject = "m0";

  // 3 denials out of 6 voters: 3 remain, candidate has 1 -> max 4 >= 4,
  // not doomed yet.
  EXPECT_FALSE(
      quorum.IsElectionDoomed(context, {"m0"}, {"m0", "m1", "m2"}));
  // 4 denials: only 2 outstanding, max 3 < 4 -> doomed.
  EXPECT_TRUE(
      quorum.IsElectionDoomed(context, {"m0"}, {"m0", "m1", "m2", "m3"}));
}

}  // namespace
}  // namespace myraft::raft

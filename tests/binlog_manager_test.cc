// BinlogManager: append/read-back, rotation, purge, truncation, persona
// rewiring and crash recovery (torn tails).

#include "binlog/binlog_manager.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace myraft::binlog {
namespace {

Uuid U(uint64_t i) { return Uuid::FromIndex(i); }

class BinlogManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    options_.dir = "/log";
    options_.persona = kBinlogPersona;
    options_.server_id = 7;
    options_.clock = &clock_;
    Reopen();
  }

  void Reopen() {
    manager_.reset();
    auto m = BinlogManager::Open(env_.get(), options_);
    ASSERT_TRUE(m.ok()) << m.status();
    manager_ = std::move(*m);
  }

  /// Builds a transaction entry with one insert.
  LogEntry Txn(OpId opid, uint64_t txn_no, const std::string& value = "v") {
    TransactionPayloadBuilder builder;
    RowOperation op;
    op.kind = RowOperation::Kind::kInsert;
    op.database = "db";
    op.table = "kv";
    op.column_count = 2;
    op.after_image = "k=" + value;
    builder.AddOperation(std::move(op));
    const std::string payload = builder.Finalize(
        Gtid{U(1), txn_no}, opid, txn_no, clock_.NowMicros(), 7);
    return LogEntry::Make(opid, EntryType::kTransaction, payload);
  }

  LogEntry NoOp(OpId opid) {
    return LogEntry::Make(opid, EntryType::kNoOp, "");
  }

  LogEntry Rotate(OpId opid) {
    return LogEntry::Make(opid, EntryType::kRotate, "");
  }

  ManualClock clock_;
  std::unique_ptr<Env> env_;
  BinlogManagerOptions options_;
  std::unique_ptr<BinlogManager> manager_;
};

TEST_F(BinlogManagerTest, StartsEmpty) {
  EXPECT_EQ(manager_->LastOpId(), kZeroOpId);
  EXPECT_EQ(manager_->FirstIndex(), 0u);
  EXPECT_EQ(manager_->LastIndex(), 0u);
  EXPECT_EQ(manager_->ListLogFiles(),
            std::vector<std::string>{"binlog.000001"});
  EXPECT_FALSE(manager_->ReadEntry(1).ok());
}

TEST_F(BinlogManagerTest, AppendAndReadBackMixedEntries) {
  ASSERT_TRUE(manager_->AppendEntry(NoOp({1, 1})).ok());
  const LogEntry txn = Txn({1, 2}, 1);
  ASSERT_TRUE(manager_->AppendEntry(txn).ok());
  ASSERT_TRUE(manager_->AppendEntry(NoOp({2, 3})).ok());

  EXPECT_EQ(manager_->LastOpId(), (OpId{2, 3}));
  EXPECT_EQ(manager_->FirstIndex(), 1u);

  auto read_noop = manager_->ReadEntry(1);
  ASSERT_TRUE(read_noop.ok());
  EXPECT_EQ(read_noop->type, EntryType::kNoOp);
  EXPECT_EQ(read_noop->id, (OpId{1, 1}));

  auto read_txn = manager_->ReadEntry(2);
  ASSERT_TRUE(read_txn.ok());
  EXPECT_EQ(*read_txn, txn);  // byte-identical payload
  EXPECT_TRUE(manager_->gtids_in_log().Contains({U(1), 1}));
}

TEST_F(BinlogManagerTest, AppendEnforcesContiguityAndTerms) {
  ASSERT_TRUE(manager_->AppendEntry(NoOp({1, 1})).ok());
  EXPECT_FALSE(manager_->AppendEntry(NoOp({1, 3})).ok());  // gap
  EXPECT_FALSE(manager_->AppendEntry(NoOp({1, 1})).ok());  // duplicate
  EXPECT_FALSE(manager_->AppendEntry(NoOp({0, 2})).ok());  // term regress
  EXPECT_TRUE(manager_->AppendEntry(NoOp({1, 2})).ok());
}

TEST_F(BinlogManagerTest, AppendRejectsMalformedTransaction) {
  LogEntry bogus = LogEntry::Make({1, 1}, EntryType::kTransaction, "not events");
  EXPECT_FALSE(manager_->AppendEntry(bogus).ok());
  // Payload stamped with a different OpId than the entry.
  LogEntry mismatched = Txn({1, 1}, 1);
  mismatched.id = {1, 2};
  // Fails contiguity? index 2 on empty log is allowed as a first entry, so
  // this exercises the OpId-stamp check.
  EXPECT_FALSE(manager_->AppendEntry(mismatched).ok());
}

TEST_F(BinlogManagerTest, ReadEntriesHonoursLimits) {
  for (uint64_t i = 1; i <= 10; ++i) {
    ASSERT_TRUE(manager_->AppendEntry(Txn({1, i}, i)).ok());
  }
  auto batch = manager_->ReadEntries(3, 4, UINT64_MAX);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 4u);
  EXPECT_EQ((*batch)[0].id.index, 3u);
  EXPECT_EQ((*batch)[3].id.index, 6u);

  // Byte budget cuts the batch short (each txn payload is ~200 bytes).
  auto small = manager_->ReadEntries(1, 100, 1);
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(small->size(), 1u);

  EXPECT_FALSE(manager_->ReadEntries(99, 10, UINT64_MAX).ok());
}

TEST_F(BinlogManagerTest, ReplicatedRotationCreatesNewFile) {
  ASSERT_TRUE(manager_->AppendEntry(Txn({1, 1}, 1)).ok());
  ASSERT_TRUE(manager_->AppendEntry(Rotate({1, 2})).ok());
  ASSERT_TRUE(manager_->AppendEntry(Txn({1, 3}, 2)).ok());

  const auto files = manager_->ListLogFiles();
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[1], "binlog.000002");
  EXPECT_EQ(manager_->CurrentPosition().file, "binlog.000002");

  // The rotate entry itself reads back.
  auto rot = manager_->ReadEntry(2);
  ASSERT_TRUE(rot.ok());
  EXPECT_EQ(rot->type, EntryType::kRotate);

  // New file's header carries the GTIDs of the previous file.
  auto first_of_second = manager_->FirstIndexOfFile("binlog.000002");
  ASSERT_TRUE(first_of_second.ok());
  EXPECT_EQ(*first_of_second, 3u);
}

TEST_F(BinlogManagerTest, PurgeLogsToRemovesOldFiles) {
  ASSERT_TRUE(manager_->AppendEntry(Txn({1, 1}, 1)).ok());
  ASSERT_TRUE(manager_->AppendEntry(Rotate({1, 2})).ok());
  ASSERT_TRUE(manager_->AppendEntry(Txn({1, 3}, 2)).ok());
  ASSERT_TRUE(manager_->AppendEntry(Rotate({1, 4})).ok());
  ASSERT_TRUE(manager_->AppendEntry(Txn({1, 5}, 3)).ok());

  ASSERT_TRUE(manager_->PurgeLogsTo("binlog.000002").ok());
  EXPECT_EQ(manager_->ListLogFiles().size(), 2u);
  EXPECT_EQ(manager_->FirstIndex(), 3u);
  EXPECT_FALSE(manager_->ReadEntry(1).ok());
  EXPECT_TRUE(manager_->ReadEntry(3).ok());
  // GTID accounting survives purge (gtid_purged semantics).
  EXPECT_TRUE(manager_->gtids_in_log().Contains({U(1), 1}));

  EXPECT_FALSE(manager_->PurgeLogsTo("binlog.000009").ok());
}

TEST_F(BinlogManagerTest, TruncateAfterRemovesSuffixAndReportsGtids) {
  ASSERT_TRUE(manager_->AppendEntry(Txn({1, 1}, 1)).ok());
  ASSERT_TRUE(manager_->AppendEntry(Txn({1, 2}, 2)).ok());
  ASSERT_TRUE(manager_->AppendEntry(NoOp({1, 3})).ok());
  ASSERT_TRUE(manager_->AppendEntry(Txn({1, 4}, 3)).ok());

  auto removed = manager_->TruncateAfter(1);
  ASSERT_TRUE(removed.ok()) << removed.status();
  EXPECT_EQ(removed->Count(), 2u);
  EXPECT_TRUE(removed->Contains({U(1), 2}));
  EXPECT_TRUE(removed->Contains({U(1), 3}));
  EXPECT_FALSE(removed->Contains({U(1), 1}));

  EXPECT_EQ(manager_->LastOpId(), (OpId{1, 1}));
  EXPECT_FALSE(manager_->ReadEntry(2).ok());
  EXPECT_FALSE(manager_->gtids_in_log().Contains({U(1), 2}));

  // The log keeps working after truncation.
  ASSERT_TRUE(manager_->AppendEntry(Txn({2, 2}, 2)).ok());
  auto reread = manager_->ReadEntry(2);
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(reread->id, (OpId{2, 2}));
}

TEST_F(BinlogManagerTest, TruncateAcrossFileBoundaryDropsFiles) {
  ASSERT_TRUE(manager_->AppendEntry(Txn({1, 1}, 1)).ok());
  ASSERT_TRUE(manager_->AppendEntry(Rotate({1, 2})).ok());
  ASSERT_TRUE(manager_->AppendEntry(Txn({1, 3}, 2)).ok());
  ASSERT_TRUE(manager_->AppendEntry(Rotate({1, 4})).ok());
  ASSERT_TRUE(manager_->AppendEntry(Txn({1, 5}, 3)).ok());
  ASSERT_EQ(manager_->ListLogFiles().size(), 3u);

  auto removed = manager_->TruncateAfter(1);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(manager_->ListLogFiles().size(), 1u);
  EXPECT_EQ(manager_->LastIndex(), 1u);
  EXPECT_EQ(manager_->CurrentPosition().file, "binlog.000001");
}

TEST_F(BinlogManagerTest, TruncateEverythingYieldsEmptyLog) {
  ASSERT_TRUE(manager_->AppendEntry(Txn({1, 1}, 1)).ok());
  auto removed = manager_->TruncateAfter(0);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(manager_->LastOpId(), kZeroOpId);
  EXPECT_EQ(manager_->FirstIndex(), 0u);
  ASSERT_TRUE(manager_->AppendEntry(Txn({3, 1}, 1)).ok());
  EXPECT_EQ(manager_->LastOpId(), (OpId{3, 1}));
}

TEST_F(BinlogManagerTest, SwitchPersonaRotatesWithNewPrefix) {
  ASSERT_TRUE(manager_->AppendEntry(Txn({1, 1}, 1)).ok());
  ASSERT_TRUE(manager_->SwitchPersona(kRelayLogPersona).ok());
  ASSERT_TRUE(manager_->AppendEntry(Txn({1, 2}, 2)).ok());

  const auto files = manager_->ListLogFiles();
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0], "binlog.000001");
  EXPECT_EQ(files[1], "relay-log.000002");
  EXPECT_EQ(manager_->persona(), kRelayLogPersona);

  // Entries span personas seamlessly.
  EXPECT_TRUE(manager_->ReadEntry(1).ok());
  EXPECT_TRUE(manager_->ReadEntry(2).ok());
  // Switching to the current persona is a no-op.
  ASSERT_TRUE(manager_->SwitchPersona(kRelayLogPersona).ok());
  EXPECT_EQ(manager_->ListLogFiles().size(), 2u);
}

TEST_F(BinlogManagerTest, ReopenRecoversFullState) {
  ASSERT_TRUE(manager_->AppendEntry(Txn({1, 1}, 1)).ok());
  ASSERT_TRUE(manager_->AppendEntry(Rotate({1, 2})).ok());
  ASSERT_TRUE(manager_->AppendEntry(NoOp({2, 3})).ok());
  ASSERT_TRUE(manager_->AppendEntry(Txn({2, 4}, 2, "after-reopen")).ok());
  const LogEntry txn4 = *manager_->ReadEntry(4);
  ASSERT_TRUE(manager_->Sync().ok());

  Reopen();

  EXPECT_EQ(manager_->LastOpId(), (OpId{2, 4}));
  EXPECT_EQ(manager_->FirstIndex(), 1u);
  EXPECT_EQ(manager_->ListLogFiles().size(), 2u);
  EXPECT_TRUE(manager_->gtids_in_log().Contains({U(1), 2}));
  auto reread = manager_->ReadEntry(4);
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(*reread, txn4);

  // Appends continue where the log left off.
  ASSERT_TRUE(manager_->AppendEntry(NoOp({2, 5})).ok());
  EXPECT_EQ(manager_->LastIndex(), 5u);
}

TEST_F(BinlogManagerTest, RecoveryTrimsTornEventTail) {
  ASSERT_TRUE(manager_->AppendEntry(Txn({1, 1}, 1)).ok());
  ASSERT_TRUE(manager_->AppendEntry(Txn({1, 2}, 2)).ok());
  ASSERT_TRUE(manager_->Sync().ok());

  // Simulate a crash mid-write: chop bytes off the current file.
  const auto position = manager_->CurrentPosition();
  manager_.reset();
  const std::string path = "/log/" + position.file;
  auto size = env_->GetFileSize(path);
  ASSERT_TRUE(size.ok());
  ASSERT_TRUE(env_->TruncateFile(path, *size - 7).ok());

  Reopen();
  // The torn second transaction is gone; the first survives.
  EXPECT_EQ(manager_->LastOpId(), (OpId{1, 1}));
  EXPECT_TRUE(manager_->ReadEntry(1).ok());
  EXPECT_FALSE(manager_->ReadEntry(2).ok());
  EXPECT_FALSE(manager_->gtids_in_log().Contains({U(1), 2}));

  // And the log accepts index 2 again.
  ASSERT_TRUE(manager_->AppendEntry(Txn({1, 2}, 2)).ok());
}

TEST_F(BinlogManagerTest, RecoveryTrimsHalfWrittenTransactionGroup) {
  ASSERT_TRUE(manager_->AppendEntry(Txn({1, 1}, 1)).ok());
  const uint64_t good_end = manager_->CurrentPosition().offset;
  ASSERT_TRUE(manager_->AppendEntry(Txn({1, 2}, 2)).ok());
  ASSERT_TRUE(manager_->Sync().ok());

  // Cut inside the second group but at an event boundary: keep its Gtid
  // event only. Find the boundary by scanning.
  const auto position = manager_->CurrentPosition();
  manager_.reset();
  const std::string path = "/log/" + position.file;
  auto reader = BinlogFileReader::Open(env_.get(), path);
  ASSERT_TRUE(reader.ok());
  uint64_t cut = 0;
  while (true) {
    uint64_t offset;
    auto event = (*reader)->Next(&offset);
    if (!event.ok()) break;
    if (offset >= good_end && event->type == EventType::kGtid) {
      cut = (*reader)->offset();  // just after the Gtid event
      break;
    }
  }
  ASSERT_GT(cut, 0u);
  ASSERT_TRUE(env_->TruncateFile(path, cut).ok());

  Reopen();
  EXPECT_EQ(manager_->LastOpId(), (OpId{1, 1}));
  // The dangling group start was trimmed, so appending works.
  ASSERT_TRUE(manager_->AppendEntry(Txn({1, 2}, 2)).ok());
  EXPECT_EQ(manager_->LastIndex(), 2u);
}

TEST_F(BinlogManagerTest, FirstEntryMayStartAboveOne) {
  // A freshly provisioned member that cloned a purged log starts at the
  // clone's first index.
  ASSERT_TRUE(manager_->AppendEntry(Txn({3, 100}, 50)).ok());
  EXPECT_EQ(manager_->FirstIndex(), 100u);
  EXPECT_EQ(manager_->LastOpId(), (OpId{3, 100}));
}

TEST_F(BinlogManagerTest, ReadEntriesSpansRotatedFiles) {
  ASSERT_TRUE(manager_->AppendEntry(Txn({1, 1}, 1)).ok());
  ASSERT_TRUE(manager_->AppendEntry(Rotate({1, 2})).ok());
  ASSERT_TRUE(manager_->AppendEntry(Txn({1, 3}, 2)).ok());
  ASSERT_TRUE(manager_->AppendEntry(Rotate({1, 4})).ok());
  ASSERT_TRUE(manager_->AppendEntry(Txn({1, 5}, 3)).ok());

  auto batch = manager_->ReadEntries(1, 100, UINT64_MAX);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 5u);
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ((*batch)[i].id.index, i + 1);
  }
  EXPECT_EQ((*batch)[1].type, EntryType::kRotate);
  EXPECT_EQ((*batch)[4].type, EntryType::kTransaction);
}

TEST_F(BinlogManagerTest, RecoveryFailsCleanlyOnMissingListedFile) {
  ASSERT_TRUE(manager_->AppendEntry(Txn({1, 1}, 1)).ok());
  ASSERT_TRUE(manager_->AppendEntry(Rotate({1, 2})).ok());
  manager_.reset();
  ASSERT_TRUE(env_->RemoveFile("/log/binlog.000001").ok());
  auto reopened = binlog::BinlogManager::Open(env_.get(), options_);
  EXPECT_FALSE(reopened.ok());  // surfaced, not silently skipped
}

TEST_F(BinlogManagerTest, RecoveryRejectsOutOfOrderIndex) {
  ASSERT_TRUE(manager_->AppendEntry(Txn({1, 1}, 1)).ok());
  ASSERT_TRUE(manager_->AppendEntry(Rotate({1, 2})).ok());
  manager_.reset();
  ASSERT_TRUE(env_->WriteStringToFile("binlog.000002\nbinlog.000001\n",
                                      "/log/log.index")
                  .ok());
  auto reopened = binlog::BinlogManager::Open(env_.get(), options_);
  EXPECT_TRUE(reopened.status().IsCorruption());
}

TEST_F(BinlogManagerTest, RecoveryRejectsGarbageIndexLine) {
  manager_.reset();
  ASSERT_TRUE(
      env_->WriteStringToFile("not-a-log-file\n", "/log/log.index").ok());
  auto reopened = binlog::BinlogManager::Open(env_.get(), options_);
  EXPECT_FALSE(reopened.ok());
}

TEST_F(BinlogManagerTest, PosixEnvEndToEnd) {
  // Same flows against the real filesystem.
  char tmpl[] = "/tmp/myraft_binlog_XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);
  BinlogManagerOptions options = options_;
  options.dir = tmpl;
  auto manager = BinlogManager::Open(GetPosixEnv(), options);
  ASSERT_TRUE(manager.ok()) << manager.status();
  ASSERT_TRUE((*manager)->AppendEntry(Txn({1, 1}, 1)).ok());
  ASSERT_TRUE((*manager)->AppendEntry(Rotate({1, 2})).ok());
  ASSERT_TRUE((*manager)->AppendEntry(Txn({1, 3}, 2)).ok());
  ASSERT_TRUE((*manager)->Sync().ok());
  auto entry = (*manager)->ReadEntry(3);
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->id, (OpId{1, 3}));
  manager->reset();

  auto reopened = BinlogManager::Open(GetPosixEnv(), options);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->LastOpId(), (OpId{1, 3}));
}

}  // namespace
}  // namespace myraft::binlog

// In-memory Raft cluster harness for unit tests: RaftConsensus instances
// over MemLog, wired through the deterministic simulator network. The
// "disk" (log + consensus metadata) survives crashes; process state does
// not — matching a real crash-restart.

#ifndef MYRAFT_TESTS_RAFT_TEST_HARNESS_H_
#define MYRAFT_TESTS_RAFT_TEST_HARNESS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "raft/consensus.h"
#include "sim/event_loop.h"
#include "sim/network.h"
#include "util/logging.h"

namespace myraft::raft_test {

using namespace myraft;        // NOLINT
using namespace myraft::raft;  // NOLINT

inline constexpr uint64_t kTickIntervalMicros = 20'000;

class TestNode : public RaftOutbox, public StateMachineListener {
 public:
  TestNode(MemberId id, RegionId region, MemberKind kind,
           sim::EventLoop* loop, sim::SimNetwork* network)
      : id_(std::move(id)),
        region_(std::move(region)),
        kind_(kind),
        loop_(loop),
        network_(network),
        env_(NewMemEnv()),
        meta_store_(env_.get(), "/meta") {}

  void CreateConsensus(const QuorumEngine* quorum, RaftOptions options) {
    options.self = id_;
    options.region = region_;
    options.kind = kind_;
    consensus_ = std::make_unique<RaftConsensus>(
        std::move(options), &log_, quorum, &meta_store_, loop_->clock(),
        loop_->rng(), this, this);
  }

  // RaftOutbox:
  void Send(Message message) override {
    if (!up_) return;
    if (outbound_hook_) {
      outbound_hook_(std::move(message));
    } else {
      network_->Send(id_, std::move(message));
    }
  }

  /// Interposes on outbound consensus traffic (e.g. a ProxyRouter).
  void set_outbound_hook(std::function<void(Message)> hook) {
    outbound_hook_ = std::move(hook);
  }

  // StateMachineListener:
  void OnLeadershipAcquired(uint64_t term, OpId noop) override {
    ++leadership_acquired_;
    // Witness behaviour (§2.2): a logtailer elected as temporary leader
    // transfers leadership to a database replica once one catches up.
    if (kind_ == MemberKind::kLogtailer && auto_transfer_from_witness_) {
      witness_wants_transfer_ = true;
    }
  }
  void OnLeadershipLost(uint64_t term) override { ++leadership_lost_; }
  void OnCommitAdvanced(OpId marker) override { last_commit_ = marker; }
  void OnEntryAppended(const LogEntry& entry) override { ++entries_appended_; }
  void OnSuffixTruncated(OpId new_last) override { ++truncations_; }
  void OnMembershipChanged(const MembershipConfig& config) override {
    ++membership_changes_;
  }
  void OnLeadershipTransferFailed(const MemberId& target,
                                  const Status& reason) override {
    ++transfer_failures_;
    last_transfer_failure_ = reason;
  }

  void MaybeActAsWitnessLeader() {
    if (!witness_wants_transfer_ || consensus_ == nullptr ||
        consensus_->role() != RaftRole::kLeader) {
      return;
    }
    // Pick the most caught-up MySQL voter.
    const auto& peers = consensus_->peers();
    MemberId best;
    uint64_t best_match = 0;
    for (const auto& member : consensus_->config().members) {
      if (member.kind != MemberKind::kMySql || !member.is_voter()) continue;
      auto it = peers.find(member.id);
      if (it == peers.end()) continue;
      if (best.empty() || it->second.match_index > best_match) {
        best = member.id;
        best_match = it->second.match_index;
      }
    }
    if (!best.empty() && best_match == consensus_->last_logged().index &&
        !consensus_->transfer_target().has_value()) {
      if (consensus_->TransferLeadership(best).ok()) {
        witness_wants_transfer_ = false;
      }
    }
  }

  void Deliver(const Message& message) {
    if (up_ && consensus_ != nullptr) consensus_->HandleMessage(message);
  }

  void Tick() {
    if (up_ && consensus_ != nullptr) {
      consensus_->Tick();
      MaybeActAsWitnessLeader();
    }
  }

  const MemberId& id() const { return id_; }
  const RegionId& region() const { return region_; }
  MemberKind kind() const { return kind_; }
  RaftConsensus* consensus() { return consensus_.get(); }
  MemLog* log() { return &log_; }
  ConsensusMetadataStore* meta_store() { return &meta_store_; }

  bool up_ = true;
  bool auto_transfer_from_witness_ = true;
  bool witness_wants_transfer_ = false;
  OpId last_commit_;
  int leadership_acquired_ = 0;
  int leadership_lost_ = 0;
  int entries_appended_ = 0;
  int truncations_ = 0;
  int membership_changes_ = 0;
  int transfer_failures_ = 0;
  Status last_transfer_failure_;

 private:
  MemberId id_;
  RegionId region_;
  MemberKind kind_;
  sim::EventLoop* loop_;
  sim::SimNetwork* network_;
  std::function<void(Message)> outbound_hook_;
  std::unique_ptr<Env> env_;
  ConsensusMetadataStore meta_store_;
  MemLog log_;
  std::unique_ptr<RaftConsensus> consensus_;
};

class RaftTestCluster {
 public:
  explicit RaftTestCluster(uint64_t seed,
                           sim::NetworkOptions net_options = {})
      : loop_(seed), network_(&loop_, net_options) {}

  /// Declares a member before StartAll.
  void AddMemberSpec(const MemberId& id, const RegionId& region,
                     MemberKind kind = MemberKind::kMySql,
                     RaftMemberType type = RaftMemberType::kVoter) {
    config_.members.push_back(MemberInfo{id, region, kind, type});
  }

  void StartAll(const QuorumEngine* quorum, RaftOptions options = {}) {
    quorum_ = quorum;
    options_ = options;
    for (const auto& member : config_.members) {
      auto node = std::make_unique<TestNode>(member.id, member.region,
                                             member.kind, &loop_, &network_);
      node->CreateConsensus(quorum, options);
      TestNode* raw = node.get();
      network_.RegisterNode(
          member.id, member.region,
          [raw](const MemberId&, const Message& m) { raw->Deliver(m); });
      nodes_[member.id] = std::move(node);
    }
    for (auto& [id, node] : nodes_) {
      MYRAFT_CHECK(node->consensus()->Bootstrap(config_).ok());
      ScheduleTick(node.get());
    }
  }

  void ScheduleTick(TestNode* node) {
    // Small deterministic per-node phase offset.
    loop_.Schedule(kTickIntervalMicros + (tick_stagger_++ % 7) * 499,
                   [this, node]() {
                     node->Tick();
                     ScheduleTick(node);
                   });
  }

  /// Simulates a process crash: volatile state gone, disk retained.
  void Crash(const MemberId& id) {
    TestNode* node = nodes_.at(id).get();
    node->up_ = false;
    network_.SetNodeUp(id, false);
  }

  void Restart(const MemberId& id) {
    TestNode* node = nodes_.at(id).get();
    node->CreateConsensus(quorum_, options_);
    MYRAFT_CHECK(node->consensus()->Start().ok());
    node->up_ = true;
    network_.SetNodeUp(id, true);
  }

  /// Runs until exactly one up-node reports leader and a majority of up
  /// voters agree on it; returns its id ("" on timeout).
  MemberId WaitForLeader(uint64_t timeout_micros) {
    const uint64_t deadline = loop_.now() + timeout_micros;
    while (loop_.now() < deadline) {
      loop_.RunFor(10'000);
      const MemberId leader = CurrentLeader();
      if (!leader.empty()) return leader;
    }
    return "";
  }

  /// The unique up-leader with the highest term, if its followers agree.
  MemberId CurrentLeader() {
    TestNode* best = nullptr;
    for (auto& [id, node] : nodes_) {
      if (!node->up_ || node->consensus() == nullptr) continue;
      if (node->consensus()->role() != RaftRole::kLeader) continue;
      if (best == nullptr ||
          node->consensus()->term() > best->consensus()->term()) {
        best = node.get();
      }
    }
    if (best == nullptr) return "";
    // Require at least one other up voter to acknowledge it.
    int acks = 0, up_voters = 0;
    for (auto& [id, node] : nodes_) {
      if (!node->up_ || node.get() == best) continue;
      const MemberInfo* info = config_.Find(id);
      if (info == nullptr || !info->is_voter()) continue;
      ++up_voters;
      if (node->consensus()->leader() == best->id()) ++acks;
    }
    if (up_voters > 0 && acks == 0) return "";
    return best->id();
  }

  /// Runs until `opid` is committed on the leader (false on timeout).
  bool WaitForCommit(const MemberId& node_id, OpId opid,
                     uint64_t timeout_micros) {
    const uint64_t deadline = loop_.now() + timeout_micros;
    while (loop_.now() < deadline) {
      loop_.RunFor(1'000);
      TestNode* node = nodes_.at(node_id).get();
      if (node->up_ && node->consensus()->IsCommitted(opid)) return true;
    }
    return false;
  }

  TestNode* node(const MemberId& id) { return nodes_.at(id).get(); }
  sim::EventLoop* loop() { return &loop_; }
  sim::SimNetwork* network() { return &network_; }
  const MembershipConfig& config() const { return config_; }
  std::vector<MemberId> ids() const {
    std::vector<MemberId> out;
    for (const auto& [id, node] : nodes_) out.push_back(id);
    return out;
  }

 private:
  sim::EventLoop loop_;
  sim::SimNetwork network_;
  MembershipConfig config_;
  std::map<MemberId, std::unique_ptr<TestNode>> nodes_;
  const QuorumEngine* quorum_ = nullptr;
  RaftOptions options_;
  uint64_t tick_stagger_ = 0;
};

}  // namespace myraft::raft_test

#endif  // MYRAFT_TESTS_RAFT_TEST_HARNESS_H_

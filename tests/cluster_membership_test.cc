// End-to-end membership changes on the full server stack: automation
// provisions a new process, AddMember brings it into the ring, it
// catches up and participates; RemoveMember shrinks the ring (§2.2).

#include <gtest/gtest.h>

#include "flexiraft/flexiraft.h"
#include "raft_test_harness.h"
#include "sim/cluster.h"
#include "wire/log_entry.h"

namespace myraft::sim {
namespace {

constexpr uint64_t kSecond = 1'000'000;

const raft::QuorumEngine* FlexiEngine() {
  static auto* engine = new flexiraft::FlexiRaftQuorumEngine(
      {flexiraft::QuorumMode::kSingleRegionDynamic});
  return engine;
}

TEST(ClusterMembershipTest, NewDatabaseJoinsCatchesUpAndServes) {
  ClusterOptions options;
  options.seed = 61;
  options.topology.db_regions = 3;
  options.topology.logtailers_per_db = 2;
  ClusterHarness cluster(options, FlexiEngine());
  ASSERT_TRUE(cluster.Bootstrap().ok());
  ASSERT_FALSE(cluster.WaitForPrimary(30 * kSecond).empty());

  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(cluster.SyncWrite("k" + std::to_string(i), "v").status.ok());
  }
  cluster.loop()->RunFor(2 * kSecond);

  // Automation provisions and adds a new non-voting replica first (the
  // usual safe order), in a follower region.
  MemberInfo learner{"dbnew", "region1", MemberKind::kMySql,
                     RaftMemberType::kNonVoter};
  ASSERT_TRUE(cluster.AddNewMember(learner).ok());
  cluster.loop()->RunFor(5 * kSecond);

  // The new member caught up from index 1 and applied everything.
  SimNode* joined = cluster.node("dbnew");
  EXPECT_EQ(joined->server()->Read("bench.kv", "k29"), "k29=v");
  EXPECT_EQ(joined->server()->consensus()->role(), RaftRole::kLearner);
  for (const MemberId& id : cluster.ids()) {
    EXPECT_TRUE(cluster.node(id)->server()->consensus()->config().Contains(
        "dbnew"))
        << id;
  }

  // Writes keep committing with the bigger ring.
  ASSERT_TRUE(cluster.SyncWrite("post-add", "v").status.ok());
  cluster.loop()->RunFor(2 * kSecond);
  EXPECT_EQ(joined->server()->Read("bench.kv", "post-add"), "post-add=v");
  EXPECT_TRUE(cluster.CheckReplicaConsistency());
}

TEST(ClusterMembershipTest, AddedLogtailerJoinsTheVoterQuorum) {
  ClusterOptions options;
  options.seed = 62;
  options.topology.db_regions = 3;
  options.topology.logtailers_per_db = 2;
  ClusterHarness cluster(options, FlexiEngine());
  ASSERT_TRUE(cluster.Bootstrap().ok());
  const MemberId primary = cluster.WaitForPrimary(30 * kSecond);
  ASSERT_FALSE(primary.empty());
  ASSERT_TRUE(cluster.SyncWrite("a", "1").status.ok());
  cluster.loop()->RunFor(2 * kSecond);

  // Add a third logtailer to the primary's region, then kill one of the
  // original two: commits must keep flowing through the new quorum.
  const RegionId home = cluster.node(primary)->region();
  MemberInfo witness{"ltnew", home, MemberKind::kLogtailer,
                     RaftMemberType::kVoter};
  ASSERT_TRUE(cluster.AddNewMember(witness).ok());
  cluster.loop()->RunFor(5 * kSecond);

  MemberId old_logtailer;
  for (const auto& member : cluster.config().members) {
    if (member.kind == MemberKind::kLogtailer && member.region == home &&
        member.id != "ltnew") {
      old_logtailer = member.id;
      break;
    }
  }
  ASSERT_FALSE(old_logtailer.empty());
  cluster.Crash(old_logtailer);
  // One of the remaining in-region logtailers (incl. ltnew) acks.
  auto write = cluster.SyncWrite("quorum", "holds", 3 * kSecond);
  EXPECT_TRUE(write.status.ok()) << write.status;
}

TEST(ClusterMembershipTest, RemoveMemberShrinksTheRing) {
  ClusterOptions options;
  options.seed = 63;
  options.topology.db_regions = 3;
  options.topology.logtailers_per_db = 2;
  options.topology.learners = 1;
  ClusterHarness cluster(options, FlexiEngine());
  ASSERT_TRUE(cluster.Bootstrap().ok());
  const MemberId primary = cluster.WaitForPrimary(30 * kSecond);
  ASSERT_FALSE(primary.empty());
  ASSERT_TRUE(cluster.SyncWrite("a", "1").status.ok());
  cluster.loop()->RunFor(2 * kSecond);

  ASSERT_TRUE(cluster.RemoveMemberViaLeader("learner0").ok());
  cluster.loop()->RunFor(3 * kSecond);
  for (const MemberId& id : cluster.ids()) {
    if (id == "learner0") continue;
    EXPECT_FALSE(cluster.node(id)->server()->consensus()->config().Contains(
        "learner0"))
        << id;
  }
  // Only one change at a time (§2.2): a second change right after a
  // committed one is fine, but two concurrent ones are refused — tested
  // at the consensus level; here we just verify the ring still serves.
  ASSERT_TRUE(cluster.SyncWrite("post-remove", "v").status.ok());
  EXPECT_TRUE(cluster.CheckReplicaConsistency());
}

// ---------------------------------------------------------------------------
// Logless reconfiguration (§15): config-as-state changes that commit via the
// install quorum, never the log.

/// First logtailer in `cluster`'s config outside `region` ("" if none).
MemberId LogtailerOutsideRegion(ClusterHarness& cluster,
                                const RegionId& region) {
  for (const auto& member : cluster.config().members) {
    if (member.kind == MemberKind::kLogtailer && member.region != region) {
      return member.id;
    }
  }
  return "";
}

TEST(ClusterMembershipTest, LoglessAddMemberCommitsViaConfigQuorum) {
  ClusterOptions options;
  options.seed = 64;
  options.topology.db_regions = 3;
  options.topology.logtailers_per_db = 2;
  options.raft.enable_logless_reconfig = true;
  ClusterHarness cluster(options, FlexiEngine());
  ASSERT_TRUE(cluster.Bootstrap().ok());
  const MemberId primary = cluster.WaitForPrimary(30 * kSecond);
  ASSERT_FALSE(primary.empty());
  ASSERT_TRUE(cluster.SyncWrite("a", "1").status.ok());
  cluster.loop()->RunFor(2 * kSecond);

  raft::RaftConsensus* leader = cluster.node(primary)->server()->consensus();
  const uint64_t version_before = leader->config().config_version;

  MemberInfo learner{"dbnew", "region1", MemberKind::kMySql,
                     RaftMemberType::kNonVoter};
  ASSERT_TRUE(cluster.AddNewMember(learner).ok());
  cluster.loop()->RunFor(5 * kSecond);

  // The change rode the versioned-config channel, not the log: identity
  // bumped, install quorum reached, pending window closed.
  EXPECT_GT(leader->config().config_version, version_before);
  EXPECT_FALSE(leader->has_pending_config_change());
  EXPECT_TRUE(
      leader->committed_config().SameIdAs(leader->config()));
  for (const MemberId& id : cluster.ids()) {
    EXPECT_TRUE(cluster.node(id)->server()->consensus()->config().Contains(
        "dbnew"))
        << id;
  }
  ASSERT_TRUE(cluster.SyncWrite("post-add", "v").status.ok());
  cluster.loop()->RunFor(2 * kSecond);
  EXPECT_TRUE(cluster.CheckReplicaConsistency());
}

TEST(ClusterMembershipTest, LoglessConcurrentChangeIsRefused) {
  ClusterOptions options;
  options.seed = 65;
  options.topology.db_regions = 3;
  options.topology.logtailers_per_db = 2;
  options.raft.enable_logless_reconfig = true;
  ClusterHarness cluster(options, FlexiEngine());
  ASSERT_TRUE(cluster.Bootstrap().ok());
  const MemberId primary = cluster.WaitForPrimary(30 * kSecond);
  ASSERT_FALSE(primary.empty());
  ASSERT_TRUE(cluster.SyncWrite("a", "1").status.ok());
  cluster.loop()->RunFor(2 * kSecond);

  // Two distinct swap targets outside the primary's region, so neither
  // change is an idempotent no-op and neither touches the commit quorum.
  const RegionId home = cluster.node(primary)->region();
  std::vector<MemberId> targets;
  for (const auto& member : cluster.config().members) {
    if (member.kind == MemberKind::kLogtailer && member.region != home) {
      targets.push_back(member.id);
    }
  }
  ASSERT_GE(targets.size(), 2u);

  // First change opens the pending window (the install quorum can't have
  // echoed yet — the loop hasn't run); the second must be refused.
  ASSERT_TRUE(cluster
                  .SwapMemberTypeViaLeader(targets[0],
                                           RaftMemberType::kNonVoter)
                  .ok());
  Status second =
      cluster.SwapMemberTypeViaLeader(targets[1], RaftMemberType::kNonVoter);
  EXPECT_TRUE(second.IsIllegalState()) << second;

  // Once the first change commits, the second goes through.
  cluster.loop()->RunFor(5 * kSecond);
  raft::RaftConsensus* leader = cluster.node(primary)->server()->consensus();
  EXPECT_FALSE(leader->has_pending_config_change());
  ASSERT_TRUE(cluster
                  .SwapMemberTypeViaLeader(targets[1],
                                           RaftMemberType::kNonVoter)
                  .ok());
  cluster.loop()->RunFor(5 * kSecond);
  EXPECT_FALSE(leader->has_pending_config_change());
  ASSERT_TRUE(cluster.SyncWrite("post", "v").status.ok());
}

TEST(ClusterMembershipTest, VoterWitnessSwapRoundTrip) {
  ClusterOptions options;
  options.seed = 66;
  options.topology.db_regions = 3;
  options.topology.logtailers_per_db = 2;
  options.raft.enable_logless_reconfig = true;
  ClusterHarness cluster(options, FlexiEngine());
  ASSERT_TRUE(cluster.Bootstrap().ok());
  const MemberId primary = cluster.WaitForPrimary(30 * kSecond);
  ASSERT_FALSE(primary.empty());
  ASSERT_TRUE(cluster.SyncWrite("a", "1").status.ok());
  cluster.loop()->RunFor(2 * kSecond);

  const MemberId target =
      LogtailerOutsideRegion(cluster, cluster.node(primary)->region());
  ASSERT_FALSE(target.empty());

  // Voter -> witness: every node converges on the demoted type.
  ASSERT_TRUE(
      cluster.SwapMemberTypeViaLeader(target, RaftMemberType::kNonVoter)
          .ok());
  cluster.loop()->RunFor(5 * kSecond);
  for (const MemberId& id : cluster.ids()) {
    const MemberInfo* info =
        cluster.node(id)->server()->consensus()->config().Find(target);
    ASSERT_NE(info, nullptr) << id;
    EXPECT_EQ(info->type, RaftMemberType::kNonVoter) << id;
  }

  // Witness -> voter: and back.
  ASSERT_TRUE(
      cluster.SwapMemberTypeViaLeader(target, RaftMemberType::kVoter).ok());
  cluster.loop()->RunFor(5 * kSecond);
  for (const MemberId& id : cluster.ids()) {
    const MemberInfo* info =
        cluster.node(id)->server()->consensus()->config().Find(target);
    ASSERT_NE(info, nullptr) << id;
    EXPECT_EQ(info->type, RaftMemberType::kVoter) << id;
  }
  ASSERT_TRUE(cluster.SyncWrite("post-swap", "v").status.ok());
  EXPECT_TRUE(cluster.CheckReplicaConsistency());
}

TEST(ClusterMembershipTest, RemovedVoterInstallsFarewellAndParks) {
  ClusterOptions options;
  options.seed = 67;
  options.topology.db_regions = 3;
  options.topology.logtailers_per_db = 2;
  options.raft.enable_logless_reconfig = true;
  ClusterHarness cluster(options, FlexiEngine());
  ASSERT_TRUE(cluster.Bootstrap().ok());
  const MemberId primary = cluster.WaitForPrimary(30 * kSecond);
  ASSERT_FALSE(primary.empty());
  ASSERT_TRUE(cluster.SyncWrite("a", "1").status.ok());
  cluster.loop()->RunFor(2 * kSecond);

  const MemberId removed =
      LogtailerOutsideRegion(cluster, cluster.node(primary)->region());
  ASSERT_FALSE(removed.empty());
  ASSERT_TRUE(cluster.RemoveMemberViaLeader(removed).ok());

  // Long enough for many election timeouts: a removed node that never
  // learned of its removal would campaign here and inflate terms.
  cluster.loop()->RunFor(15 * kSecond);

  raft::RaftConsensus* gone = cluster.node(removed)->server()->consensus();
  // The farewell heartbeat delivered the config in which it is absent...
  EXPECT_FALSE(gone->config().Contains(removed));
  // ...so it parked: following, not campaigning, terms quiet.
  EXPECT_EQ(gone->role(), RaftRole::kFollower);
  raft::RaftConsensus* leader = cluster.node(primary)->server()->consensus();
  EXPECT_LE(gone->term(), leader->term());
  for (const MemberId& id : cluster.ids()) {
    if (id == removed) continue;
    EXPECT_FALSE(cluster.node(id)->server()->consensus()->config().Contains(
        removed))
        << id;
  }
  ASSERT_TRUE(cluster.SyncWrite("post-remove", "v").status.ok());
  EXPECT_TRUE(cluster.CheckReplicaConsistency());
}

TEST(ClusterMembershipTest, ReconfigRacingLeaderTransferStaysSafe) {
  ClusterOptions options;
  options.seed = 68;
  options.topology.db_regions = 3;
  options.topology.logtailers_per_db = 2;
  options.raft.enable_logless_reconfig = true;
  ClusterHarness cluster(options, FlexiEngine());
  ASSERT_TRUE(cluster.Bootstrap().ok());
  const MemberId primary = cluster.WaitForPrimary(30 * kSecond);
  ASSERT_FALSE(primary.empty());
  ASSERT_TRUE(cluster.SyncWrite("a", "1").status.ok());
  cluster.loop()->RunFor(2 * kSecond);

  // A database voter in another region to hand leadership to, and a
  // logtailer to demote, mid-handoff.
  MemberId transfer_target;
  for (const auto& member : cluster.config().members) {
    if (member.kind == MemberKind::kMySql && member.is_voter() &&
        member.id != primary) {
      transfer_target = member.id;
      break;
    }
  }
  ASSERT_FALSE(transfer_target.empty());
  const MemberId demote_target =
      LogtailerOutsideRegion(cluster, cluster.node(primary)->region());
  ASSERT_FALSE(demote_target.empty());

  raft::RaftConsensus* old_leader =
      cluster.node(primary)->server()->consensus();
  ASSERT_TRUE(old_leader->TransferLeadership(transfer_target).ok());
  // The reconfig races the in-flight transfer: both orders are legal, the
  // change may land on either side of the handoff or be refused — what
  // must hold is that the ring converges on one leader and one config.
  Status racing =
      cluster.SwapMemberTypeViaLeader(demote_target, RaftMemberType::kNonVoter);
  EXPECT_TRUE(racing.ok() || racing.IsIllegalState() ||
              racing.IsServiceUnavailable())
      << racing;

  cluster.loop()->RunFor(10 * kSecond);
  const MemberId new_primary = cluster.WaitForPrimary(30 * kSecond);
  ASSERT_FALSE(new_primary.empty());
  raft::RaftConsensus* leader =
      cluster.node(new_primary)->server()->consensus();
  EXPECT_FALSE(leader->has_pending_config_change());
  // Every node ends on the leader's exact config identity.
  for (const MemberId& id : cluster.ids()) {
    raft::RaftConsensus* c = cluster.node(id)->server()->consensus();
    EXPECT_TRUE(c->config().SameIdAs(leader->config())) << id;
  }
  ASSERT_TRUE(cluster.SyncWrite("post-race", "v").status.ok());
  EXPECT_TRUE(cluster.CheckReplicaConsistency());
}

// ---------------------------------------------------------------------------
// Legacy log-path regressions (§15 bug crop): truncation rollback with
// stacked uncommitted config entries, and the Replicate(kConfigChange)
// guard. Hand-driven through the raft_test harness so message timing is
// exact.

using raft_test::RaftTestCluster;

raft::MajorityQuorumEngine* Majority() {
  static auto* engine = new raft::MajorityQuorumEngine();
  return engine;
}

LogEntry ConfigEntry(uint64_t term, uint64_t index,
                     const MembershipConfig& config) {
  std::string payload;
  EncodeMembershipConfig(config, &payload);
  return LogEntry::Make({term, index}, EntryType::kConfigChange,
                        std::move(payload));
}

AppendEntriesRequest Append(const MemberId& leader, const MemberId& dest,
                            uint64_t term, OpId prev,
                            std::vector<LogEntry> entries) {
  AppendEntriesRequest request;
  request.leader = leader;
  request.dest = dest;
  request.term = term;
  request.prev = prev;
  request.commit_marker = kZeroOpId;  // nothing committed: all stacked
  request.entries = std::move(entries);
  return request;
}

/// Three passive nodes (election timers effectively off) so a test can act
/// as the leader and drive one follower with hand-crafted batches.
raft::RaftOptions PassiveOptions() {
  raft::RaftOptions options;
  options.heartbeat_interval_micros = 1'000'000'000'000;  // never campaign
  return options;
}

TEST(ClusterMembershipTest, StackedUncommittedConfigsRollBackToCommitted) {
  RaftTestCluster nodes(69);
  nodes.AddMemberSpec("f", "r0");
  nodes.AddMemberSpec("ldr", "r0");
  nodes.AddMemberSpec("x", "r1");
  nodes.StartAll(Majority(), PassiveOptions());
  raft::RaftConsensus* f = nodes.node("f")->consensus();
  const MembershipConfig base = nodes.config();

  // Term-2 leader stacks TWO uncommitted config entries in one batch:
  // base+d at index 2, then base+d+e at index 3.
  MembershipConfig with_d = base;
  with_d.members.push_back({"d", "r1", MemberKind::kMySql,
                            RaftMemberType::kVoter});
  with_d.config_index = 2;
  MembershipConfig with_de = with_d;
  with_de.members.push_back({"e", "r2", MemberKind::kMySql,
                             RaftMemberType::kVoter});
  with_de.config_index = 3;
  nodes.node("f")->Deliver(Message(Append(
      "ldr", "f", 2, kZeroOpId,
      {LogEntry::Make({2, 1}, EntryType::kNoOp, ""),
       ConfigEntry(2, 2, with_d), ConfigEntry(2, 3, with_de)})));
  ASSERT_TRUE(f->config().Contains("d"));
  ASSERT_TRUE(f->config().Contains("e"));
  ASSERT_FALSE(f->committed_config().Contains("d"));
  ASSERT_TRUE(f->has_pending_config_change());

  // A term-3 leader overwrites the whole divergent suffix. The historical
  // single-slot rollback restored the INTERMEDIATE config (base+d); the
  // correct target is the last committed config.
  nodes.node("f")->Deliver(Message(
      Append("x", "f", 3, {2, 1},
             {LogEntry::Make({3, 2}, EntryType::kNoOp, "")})));
  EXPECT_FALSE(f->config().Contains("d"));
  EXPECT_FALSE(f->config().Contains("e"));
  EXPECT_FALSE(f->has_pending_config_change());

  // Crash/restart re-derives the same answer from disk: a rejoined
  // follower must not come back acting on the truncated config.
  nodes.Crash("f");
  nodes.Restart("f");
  f = nodes.node("f")->consensus();
  EXPECT_FALSE(f->config().Contains("d"));
  EXPECT_FALSE(f->config().Contains("e"));
  EXPECT_FALSE(f->has_pending_config_change());
}

TEST(ClusterMembershipTest, PartialTruncationKeepsSurvivingConfigEntry) {
  RaftTestCluster nodes(70);
  nodes.AddMemberSpec("f", "r0");
  nodes.AddMemberSpec("ldr", "r0");
  nodes.AddMemberSpec("x", "r1");
  nodes.StartAll(Majority(), PassiveOptions());
  raft::RaftConsensus* f = nodes.node("f")->consensus();
  const MembershipConfig base = nodes.config();

  MembershipConfig with_d = base;
  with_d.members.push_back({"d", "r1", MemberKind::kMySql,
                            RaftMemberType::kVoter});
  with_d.config_index = 2;
  MembershipConfig with_de = with_d;
  with_de.members.push_back({"e", "r2", MemberKind::kMySql,
                             RaftMemberType::kVoter});
  with_de.config_index = 3;
  nodes.node("f")->Deliver(Message(Append(
      "ldr", "f", 2, kZeroOpId,
      {LogEntry::Make({2, 1}, EntryType::kNoOp, ""),
       ConfigEntry(2, 2, with_d), ConfigEntry(2, 3, with_de)})));
  ASSERT_TRUE(f->config().Contains("e"));

  // Truncate only index 3: the surviving config entry at index 2 is the
  // rollback target, and it is still pending (uncommitted).
  nodes.node("f")->Deliver(Message(
      Append("x", "f", 3, {2, 2},
             {LogEntry::Make({3, 3}, EntryType::kNoOp, "")})));
  EXPECT_TRUE(f->config().Contains("d"));
  EXPECT_FALSE(f->config().Contains("e"));
  EXPECT_TRUE(f->has_pending_config_change());
}

TEST(ClusterMembershipTest, DirectReplicateConfigChangeWhilePendingIsRejected) {
  RaftTestCluster nodes(71);
  nodes.AddMemberSpec("a", "r0");
  nodes.AddMemberSpec("b", "r0");
  nodes.AddMemberSpec("c", "r1");
  nodes.StartAll(Majority());
  const MemberId leader_id = nodes.WaitForLeader(30 * kSecond);
  ASSERT_FALSE(leader_id.empty());
  raft::RaftConsensus* leader = nodes.node(leader_id)->consensus();
  ASSERT_TRUE(
      nodes.WaitForCommit(leader_id, leader->last_logged(), 10 * kSecond));

  // Open the legacy pending window with a real AddMember, then hit the
  // raw entry point before the loop can commit it. Pre-guard, the direct
  // Replicate stacked a second uncommitted config on top of the pending
  // one and broke the truncation rollback.
  ASSERT_TRUE(leader
                  ->AddMember({"d", "r2", MemberKind::kMySql,
                               RaftMemberType::kVoter})
                  .ok());
  ASSERT_TRUE(leader->has_pending_config_change());
  MembershipConfig stacked = leader->config();
  stacked.members.push_back({"e", "r2", MemberKind::kMySql,
                             RaftMemberType::kVoter});
  std::string payload;
  EncodeMembershipConfig(stacked, &payload);
  auto direct =
      leader->Replicate(EntryType::kConfigChange, std::move(payload));
  ASSERT_FALSE(direct.ok());
  EXPECT_TRUE(direct.status().IsIllegalState()) << direct.status();

  // The legitimate change still commits cleanly on every voter.
  const uint64_t deadline = nodes.loop()->now() + 30 * kSecond;
  while (nodes.loop()->now() < deadline &&
         leader->has_pending_config_change()) {
    nodes.loop()->RunFor(100'000);
  }
  EXPECT_FALSE(leader->has_pending_config_change());
  for (const MemberId& id : {MemberId("a"), MemberId("b"), MemberId("c")}) {
    EXPECT_TRUE(nodes.node(id)->consensus()->config().Contains("d")) << id;
  }
}

}  // namespace
}  // namespace myraft::sim

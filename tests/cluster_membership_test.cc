// End-to-end membership changes on the full server stack: automation
// provisions a new process, AddMember brings it into the ring, it
// catches up and participates; RemoveMember shrinks the ring (§2.2).

#include <gtest/gtest.h>

#include "flexiraft/flexiraft.h"
#include "sim/cluster.h"

namespace myraft::sim {
namespace {

constexpr uint64_t kSecond = 1'000'000;

const raft::QuorumEngine* FlexiEngine() {
  static auto* engine = new flexiraft::FlexiRaftQuorumEngine(
      {flexiraft::QuorumMode::kSingleRegionDynamic});
  return engine;
}

TEST(ClusterMembershipTest, NewDatabaseJoinsCatchesUpAndServes) {
  ClusterOptions options;
  options.seed = 61;
  options.db_regions = 3;
  options.logtailers_per_db = 2;
  ClusterHarness cluster(options, FlexiEngine());
  ASSERT_TRUE(cluster.Bootstrap().ok());
  ASSERT_FALSE(cluster.WaitForPrimary(30 * kSecond).empty());

  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(cluster.SyncWrite("k" + std::to_string(i), "v").status.ok());
  }
  cluster.loop()->RunFor(2 * kSecond);

  // Automation provisions and adds a new non-voting replica first (the
  // usual safe order), in a follower region.
  MemberInfo learner{"dbnew", "region1", MemberKind::kMySql,
                     RaftMemberType::kNonVoter};
  ASSERT_TRUE(cluster.AddNewMember(learner).ok());
  cluster.loop()->RunFor(5 * kSecond);

  // The new member caught up from index 1 and applied everything.
  SimNode* joined = cluster.node("dbnew");
  EXPECT_EQ(joined->server()->Read("bench.kv", "k29"), "k29=v");
  EXPECT_EQ(joined->server()->consensus()->role(), RaftRole::kLearner);
  for (const MemberId& id : cluster.ids()) {
    EXPECT_TRUE(cluster.node(id)->server()->consensus()->config().Contains(
        "dbnew"))
        << id;
  }

  // Writes keep committing with the bigger ring.
  ASSERT_TRUE(cluster.SyncWrite("post-add", "v").status.ok());
  cluster.loop()->RunFor(2 * kSecond);
  EXPECT_EQ(joined->server()->Read("bench.kv", "post-add"), "post-add=v");
  EXPECT_TRUE(cluster.CheckReplicaConsistency());
}

TEST(ClusterMembershipTest, AddedLogtailerJoinsTheVoterQuorum) {
  ClusterOptions options;
  options.seed = 62;
  options.db_regions = 3;
  options.logtailers_per_db = 2;
  ClusterHarness cluster(options, FlexiEngine());
  ASSERT_TRUE(cluster.Bootstrap().ok());
  const MemberId primary = cluster.WaitForPrimary(30 * kSecond);
  ASSERT_FALSE(primary.empty());
  ASSERT_TRUE(cluster.SyncWrite("a", "1").status.ok());
  cluster.loop()->RunFor(2 * kSecond);

  // Add a third logtailer to the primary's region, then kill one of the
  // original two: commits must keep flowing through the new quorum.
  const RegionId home = cluster.node(primary)->region();
  MemberInfo witness{"ltnew", home, MemberKind::kLogtailer,
                     RaftMemberType::kVoter};
  ASSERT_TRUE(cluster.AddNewMember(witness).ok());
  cluster.loop()->RunFor(5 * kSecond);

  MemberId old_logtailer;
  for (const auto& member : cluster.config().members) {
    if (member.kind == MemberKind::kLogtailer && member.region == home &&
        member.id != "ltnew") {
      old_logtailer = member.id;
      break;
    }
  }
  ASSERT_FALSE(old_logtailer.empty());
  cluster.Crash(old_logtailer);
  // One of the remaining in-region logtailers (incl. ltnew) acks.
  auto write = cluster.SyncWrite("quorum", "holds", 3 * kSecond);
  EXPECT_TRUE(write.status.ok()) << write.status;
}

TEST(ClusterMembershipTest, RemoveMemberShrinksTheRing) {
  ClusterOptions options;
  options.seed = 63;
  options.db_regions = 3;
  options.logtailers_per_db = 2;
  options.learners = 1;
  ClusterHarness cluster(options, FlexiEngine());
  ASSERT_TRUE(cluster.Bootstrap().ok());
  const MemberId primary = cluster.WaitForPrimary(30 * kSecond);
  ASSERT_FALSE(primary.empty());
  ASSERT_TRUE(cluster.SyncWrite("a", "1").status.ok());
  cluster.loop()->RunFor(2 * kSecond);

  ASSERT_TRUE(cluster.RemoveMemberViaLeader("learner0").ok());
  cluster.loop()->RunFor(3 * kSecond);
  for (const MemberId& id : cluster.ids()) {
    if (id == "learner0") continue;
    EXPECT_FALSE(cluster.node(id)->server()->consensus()->config().Contains(
        "learner0"))
        << id;
  }
  // Only one change at a time (§2.2): a second change right after a
  // committed one is fine, but two concurrent ones are refused — tested
  // at the consensus level; here we just verify the ring still serves.
  ASSERT_TRUE(cluster.SyncWrite("post-remove", "v").status.ok());
  EXPECT_TRUE(cluster.CheckReplicaConsistency());
}

}  // namespace
}  // namespace myraft::sim

// Wire-format tests: OpId ordering, membership helpers, entry and message
// round-trips, and corruption rejection.

#include <gtest/gtest.h>

#include "util/random.h"
#include "wire/messages.h"

namespace myraft {
namespace {

TEST(OpIdTest, OrderingFollowsRaftRules) {
  EXPECT_TRUE((OpId{2, 1}).IsLaterThan(OpId{1, 100}));
  EXPECT_TRUE((OpId{2, 5}).IsLaterThan(OpId{2, 4}));
  EXPECT_FALSE((OpId{2, 4}).IsLaterThan(OpId{2, 4}));
  EXPECT_FALSE(kZeroOpId.IsLaterThan(OpId{1, 1}));
  EXPECT_TRUE(kZeroOpId.IsZero());
  EXPECT_EQ((OpId{3, 14}).ToString(), "3.14");
}

MembershipConfig PaperTopology() {
  // Primary region has 1 mysql + 2 logtailers; two remote regions each a
  // follower + 2 logtailers; plus one learner.
  MembershipConfig config;
  config.config_index = 1;
  auto add = [&](const char* id, const char* region, MemberKind kind,
                 RaftMemberType type) {
    config.members.push_back(MemberInfo{id, region, kind, type});
  };
  add("db0", "r0", MemberKind::kMySql, RaftMemberType::kVoter);
  add("lt0a", "r0", MemberKind::kLogtailer, RaftMemberType::kVoter);
  add("lt0b", "r0", MemberKind::kLogtailer, RaftMemberType::kVoter);
  add("db1", "r1", MemberKind::kMySql, RaftMemberType::kVoter);
  add("lt1a", "r1", MemberKind::kLogtailer, RaftMemberType::kVoter);
  add("lt1b", "r1", MemberKind::kLogtailer, RaftMemberType::kVoter);
  add("learner0", "r2", MemberKind::kMySql, RaftMemberType::kNonVoter);
  return config;
}

TEST(MembershipTest, Lookups) {
  const auto config = PaperTopology();
  EXPECT_TRUE(config.Contains("db0"));
  EXPECT_FALSE(config.Contains("ghost"));
  EXPECT_EQ(config.NumVoters(), 6);
  EXPECT_EQ(config.MemberIds().size(), 7u);
  EXPECT_EQ(config.VoterIds().size(), 6u);

  const MemberInfo* witness = config.Find("lt0a");
  ASSERT_NE(witness, nullptr);
  EXPECT_TRUE(witness->is_witness());
  EXPECT_FALSE(witness->has_engine());

  const MemberInfo* learner = config.Find("learner0");
  ASSERT_NE(learner, nullptr);
  EXPECT_TRUE(learner->is_learner());
  EXPECT_FALSE(learner->is_voter());
  EXPECT_TRUE(learner->has_engine());
}

TEST(MembershipTest, VotersByRegionGroupsAndOrders) {
  const auto config = PaperTopology();
  const auto groups = config.VotersByRegion();
  ASSERT_EQ(groups.size(), 2u);  // learner region r2 has no voters
  EXPECT_EQ(groups[0].first, "r0");
  EXPECT_EQ(groups[0].second.size(), 3u);
  EXPECT_EQ(groups[1].first, "r1");
  EXPECT_EQ(groups[1].second.size(), 3u);
}

TEST(MembershipTest, ConfigCodecRoundTrip) {
  const auto config = PaperTopology();
  std::string buf;
  EncodeMembershipConfig(config, &buf);
  auto decoded = DecodeMembershipConfig(buf);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, config);
}

TEST(MembershipTest, ConfigCodecRejectsTruncation) {
  std::string buf;
  EncodeMembershipConfig(PaperTopology(), &buf);
  for (size_t len = 0; len < buf.size(); len += 3) {
    EXPECT_FALSE(DecodeMembershipConfig(Slice(buf.data(), len)).ok());
  }
}

TEST(MembershipTest, VersionedConfigCodecRoundTrip) {
  // Logless identity group (§15): (config_term, config_version) and the
  // quorum-spec override survive the codec.
  auto config = PaperTopology();
  config.config_term = 7;
  config.config_version = 42;
  config.quorum_spec = "multi:2";
  std::string buf;
  EncodeMembershipConfig(config, &buf);
  auto decoded = DecodeMembershipConfig(buf);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, config);
  EXPECT_EQ(decoded->config_term, 7u);
  EXPECT_EQ(decoded->config_version, 42u);
  EXPECT_EQ(decoded->quorum_spec, "multi:2");
}

TEST(MembershipTest, UnversionedConfigEncodesPreReconfigCompatible) {
  // A legacy (identity-less) config must encode byte-identically to the
  // pre-reconfig format: old decoders reject trailing bytes, so the
  // identity group must be absent, not zero-filled.
  const auto legacy = PaperTopology();
  std::string legacy_buf;
  EncodeMembershipConfig(legacy, &legacy_buf);
  auto versioned = legacy;
  versioned.config_version = 1;
  std::string versioned_buf;
  EncodeMembershipConfig(versioned, &versioned_buf);
  EXPECT_LT(legacy_buf.size(), versioned_buf.size());
  auto decoded = DecodeMembershipConfig(legacy_buf);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->config_term, 0u);
  EXPECT_EQ(decoded->config_version, 0u);
  EXPECT_TRUE(decoded->quorum_spec.empty());
}

TEST(MembershipTest, ConfigIdentityOrderingTermDominates) {
  MembershipConfig a, b;
  a.config_term = 2;
  a.config_version = 1;
  b.config_term = 1;
  b.config_version = 9;
  EXPECT_TRUE(a.IdIsNewerThan(b));   // term dominates version
  EXPECT_FALSE(b.IdIsNewerThan(a));
  b.config_term = 2;
  b.config_version = 2;
  EXPECT_TRUE(b.IdIsNewerThan(a));   // same term: version decides
  EXPECT_FALSE(a.IdIsNewerThan(a));  // irreflexive
  EXPECT_TRUE(a.SameIdAs(a));
  EXPECT_FALSE(a.SameIdAs(b));
}

TEST(LogEntryTest, MakeComputesChecksum) {
  const LogEntry e = LogEntry::Make({3, 7}, EntryType::kTransaction, "data");
  EXPECT_TRUE(e.VerifyChecksum());
  LogEntry corrupted = e;
  corrupted.payload[0] ^= 0x01;
  EXPECT_FALSE(corrupted.VerifyChecksum());
}

TEST(LogEntryTest, RoundTrip) {
  std::string buf;
  const LogEntry a = LogEntry::Make({1, 1}, EntryType::kNoOp, "");
  const LogEntry b =
      LogEntry::Make({1, 2}, EntryType::kTransaction, std::string(5000, 'p'));
  a.EncodeTo(&buf);
  b.EncodeTo(&buf);
  Slice in(buf);
  auto da = LogEntry::DecodeFrom(&in);
  auto db = LogEntry::DecodeFrom(&in);
  ASSERT_TRUE(da.ok());
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(*da, a);
  EXPECT_EQ(*db, b);
  EXPECT_TRUE(in.empty());
}

TEST(LogEntryTest, DecodeRejectsBadType) {
  std::string buf;
  LogEntry::Make({1, 1}, EntryType::kNoOp, "x").EncodeTo(&buf);
  buf[2] = 99;  // type byte follows the two single-byte varints
  Slice in(buf);
  EXPECT_FALSE(LogEntry::DecodeFrom(&in).ok());
}

AppendEntriesRequest MakeAppendRequest() {
  AppendEntriesRequest req;
  req.leader = "db0";
  req.dest = "lt1a";
  req.route = {"db1"};
  req.term = 9;
  req.prev = {8, 41};
  req.commit_marker = {9, 40};
  req.entries.push_back(LogEntry::Make({9, 42}, EntryType::kTransaction,
                                       std::string(500, 'q')));
  req.entries.push_back(LogEntry::Make({9, 43}, EntryType::kRotate, "rot"));
  return req;
}

TEST(MessagesTest, AppendEntriesRoundTrip) {
  const auto req = MakeAppendRequest();
  std::string buf;
  req.EncodeTo(&buf);
  auto decoded = AppendEntriesRequest::DecodeFrom(buf);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, req);
  EXPECT_EQ(req.PayloadBytes(), 503u);
  EXPECT_FALSE(req.IsHeartbeat());
}

TEST(MessagesTest, AppendEntriesLeaseRoundTrip) {
  // The lease group trails the (optional) trace pair; an untraced request
  // carrying a lease must force the zero trace pair out and still round-
  // trip, with and without a duration (duration 0 = timestamp-only stamp).
  for (uint64_t duration : {uint64_t{0}, uint64_t{1'100'000}}) {
    auto req = MakeAppendRequest();
    req.lease_duration_micros = duration;
    req.lease_sent_micros = 777'000'123;
    std::string buf;
    req.EncodeTo(&buf);
    auto decoded = AppendEntriesRequest::DecodeFrom(buf);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(*decoded, req);
  }
}

TEST(MessagesTest, AppendEntriesWithoutLeaseStaysPreLeaseCompatible) {
  // No lease, no trace: the encoding must not grow any trailing groups, so
  // pre-lease decoders (which reject trailing bytes) still accept it.
  const auto req = MakeAppendRequest();
  std::string with_lease_buf, buf;
  req.EncodeTo(&buf);
  auto with_lease = req;
  with_lease.lease_sent_micros = 1;
  with_lease.EncodeTo(&with_lease_buf);
  EXPECT_LT(buf.size(), with_lease_buf.size());
  auto decoded = AppendEntriesRequest::DecodeFrom(buf);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->lease_duration_micros, 0u);
  EXPECT_EQ(decoded->lease_sent_micros, 0u);
}

TEST(MessagesTest, AppendResponseLeaseEchoRoundTrip) {
  AppendEntriesResponse resp;
  resp.from = "lt1a";
  resp.dest = "db0";
  resp.term = 9;
  resp.success = true;
  resp.last_received = {9, 43};
  resp.last_durable_index = 43;
  resp.lease_granted_micros = 777'000'123;
  std::string buf;
  resp.EncodeTo(&buf);
  auto decoded = AppendEntriesResponse::DecodeFrom(buf);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, resp);
  // Without the echo the trailing groups vanish entirely.
  resp.lease_granted_micros = 0;
  std::string plain;
  resp.EncodeTo(&plain);
  EXPECT_LT(plain.size(), buf.size());
  auto plain_decoded = AppendEntriesResponse::DecodeFrom(plain);
  ASSERT_TRUE(plain_decoded.ok());
  EXPECT_EQ(plain_decoded->lease_granted_micros, 0u);
}

TEST(MessagesTest, AppendEntriesConfigPayloadRoundTrip) {
  // The config group trails the lease group; a request carrying only a
  // config must force the trace pair and lease group out (zeros allowed)
  // and still round-trip.
  auto req = MakeAppendRequest();
  std::string cfg;
  EncodeMembershipConfig(PaperTopology(), &cfg);
  req.config_payload = cfg;
  std::string buf;
  req.EncodeTo(&buf);
  auto decoded = AppendEntriesRequest::DecodeFrom(buf);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, req);
  auto inner = DecodeMembershipConfig(decoded->config_payload);
  ASSERT_TRUE(inner.ok());
  EXPECT_EQ(*inner, PaperTopology());
  // Without the config the encoding shrinks back to the pre-reconfig
  // shape, which pre-reconfig decoders (rejecting trailing bytes) accept.
  req.config_payload.clear();
  std::string plain;
  req.EncodeTo(&plain);
  EXPECT_LT(plain.size(), buf.size());
  auto plain_decoded = AppendEntriesRequest::DecodeFrom(plain);
  ASSERT_TRUE(plain_decoded.ok());
  EXPECT_TRUE(plain_decoded->config_payload.empty());
}

TEST(MessagesTest, AppendResponseConfigAckRoundTrip) {
  AppendEntriesResponse resp;
  resp.from = "lt1a";
  resp.dest = "db0";
  resp.term = 9;
  resp.success = false;  // config acks ride on rejections too (§15)
  resp.last_received = {9, 43};
  resp.last_durable_index = 43;
  resp.config_term = 9;
  resp.config_version = 4;
  std::string buf;
  resp.EncodeTo(&buf);
  auto decoded = AppendEntriesResponse::DecodeFrom(buf);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, resp);
  // No ack → the trailing group vanishes (logless-off byte identity).
  resp.config_term = 0;
  resp.config_version = 0;
  std::string plain;
  resp.EncodeTo(&plain);
  EXPECT_LT(plain.size(), buf.size());
  ASSERT_TRUE(AppendEntriesResponse::DecodeFrom(plain).ok());
}

TEST(MessagesTest, VoteRequestConfigIdentityRoundTrip) {
  VoteRequest req;
  req.candidate = "db1";
  req.dest = "lt1b";
  req.term = 12;
  req.last_log = {11, 999};
  req.candidate_region = "r1";
  req.config_term = 11;
  req.config_version = 3;
  std::string buf;
  req.EncodeTo(&buf);
  auto decoded = VoteRequest::DecodeFrom(buf);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, req);
  req.config_term = 0;
  req.config_version = 0;
  std::string plain;
  req.EncodeTo(&plain);
  EXPECT_LT(plain.size(), buf.size());
  ASSERT_TRUE(VoteRequest::DecodeFrom(plain).ok());
}

TEST(MessagesTest, ProxyOpFlagSurvives) {
  auto req = MakeAppendRequest();
  req.proxy_payload_omitted = true;
  for (auto& e : req.entries) e.payload.clear();
  std::string buf;
  req.EncodeTo(&buf);
  auto decoded = AppendEntriesRequest::DecodeFrom(buf);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->proxy_payload_omitted);
  EXPECT_EQ(decoded->PayloadBytes(), 0u);
  // Checksums still present for reconstitution verification.
  EXPECT_EQ(decoded->entries[0].checksum, req.entries[0].checksum);
}

TEST(MessagesTest, AppendResponseRoundTrip) {
  AppendEntriesResponse resp;
  resp.from = "lt1a";
  resp.dest = "db0";
  resp.route = {"db1"};
  resp.term = 9;
  resp.success = true;
  resp.last_received = {9, 43};
  resp.last_durable_index = 43;
  std::string buf;
  resp.EncodeTo(&buf);
  auto decoded = AppendEntriesResponse::DecodeFrom(buf);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, resp);
}

TEST(MessagesTest, VoteRequestRoundTripAllFlagCombos) {
  for (bool pre : {false, true}) {
    for (bool mock : {false, true}) {
      VoteRequest req;
      req.candidate = "db1";
      req.dest = "lt1b";
      req.term = 12;
      req.last_log = {11, 999};
      req.candidate_region = "r1";
      req.pre_vote = pre;
      req.mock_election = mock;
      req.leader_cursor_snapshot = {11, 1000};
      std::string buf;
      req.EncodeTo(&buf);
      auto decoded = VoteRequest::DecodeFrom(buf);
      ASSERT_TRUE(decoded.ok());
      EXPECT_EQ(*decoded, req);
    }
  }
}

TEST(MessagesTest, VoteResponseRoundTrip) {
  VoteResponse resp;
  resp.from = "lt1b";
  resp.dest = "db1";
  resp.term = 12;
  resp.granted = false;
  resp.pre_vote = true;
  resp.mock_election = true;
  resp.reason = "lagging-same-region";
  resp.voter_region = "r1";
  std::string buf;
  resp.EncodeTo(&buf);
  auto decoded = VoteResponse::DecodeFrom(buf);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, resp);
}

TEST(MessagesTest, EnvelopeRoundTripEveryType) {
  std::vector<Message> messages;
  messages.emplace_back(MakeAppendRequest());
  messages.emplace_back(AppendEntriesResponse{
      "a", "b", {}, 3, true, {3, 5}, 5});
  VoteRequest vr;
  vr.candidate = "c";
  vr.dest = "d";
  vr.term = 4;
  messages.emplace_back(vr);
  messages.emplace_back(VoteResponse{"e", "f", 4, true, false, false, "", "r0"});
  messages.emplace_back(StartElectionRequest{"g", "h", 7});

  for (const auto& msg : messages) {
    std::string buf;
    EncodeMessage(msg, &buf);
    auto decoded = DecodeMessage(buf);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(msg.index(), decoded->index());
    EXPECT_TRUE(msg == *decoded);
    EXPECT_EQ(MessageWireBytes(msg), buf.size());
  }
}

TEST(MessagesTest, FromAndDestHelpers) {
  const auto req = MakeAppendRequest();
  EXPECT_EQ(MessageFrom(Message(req)), "db0");
  EXPECT_EQ(MessageDest(Message(req)), "lt1a");
  VoteRequest vr;
  vr.candidate = "cand";
  vr.dest = "voter";
  EXPECT_EQ(MessageFrom(Message(vr)), "cand");
  EXPECT_EQ(MessageDest(Message(vr)), "voter");
}

TEST(MessagesTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(DecodeMessage(Slice()).ok());
  EXPECT_FALSE(DecodeMessage(Slice("\xFFgarbage", 8)).ok());
  // Valid envelope, truncated body.
  std::string buf;
  EncodeMessage(Message(MakeAppendRequest()), &buf);
  Random rng(21);
  for (int i = 0; i < 50; ++i) {
    const size_t len = rng.Uniform(buf.size());
    auto r = DecodeMessage(Slice(buf.data(), len));
    if (r.ok()) {
      // Truncation may coincidentally decode only if it is a full message;
      // that cannot happen for a strict prefix of a valid encoding here.
      ADD_FAILURE() << "decoded prefix of length " << len;
    }
  }
}

}  // namespace
}  // namespace myraft

// Prior-setup baseline tests: semi-sync commit path (ack from in-region
// logtailer), degrade-to-async on ack timeout, external failure detection
// and failover (slow!), graceful promotion, fencing of deposed primaries
// and log healing on rejoin.

#include "semisync/cluster.h"

#include <gtest/gtest.h>

namespace myraft::semisync {
namespace {

constexpr uint64_t kSecond = 1'000'000;

SemiSyncClusterOptions DefaultOptions(uint64_t seed) {
  SemiSyncClusterOptions options;
  options.seed = seed;
  options.db_regions = 3;
  options.logtailers_per_db = 2;
  return options;
}

TEST(SemiSyncClusterTest, CommitWaitsForInRegionAck) {
  SemiSyncCluster cluster(DefaultOptions(5));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  ASSERT_EQ(cluster.CurrentPrimary(), "db0");

  auto result = cluster.SyncWrite("k1", "v1");
  ASSERT_TRUE(result.status.ok()) << result.status;
  // Latency: client RTT + processing + one in-region ack RTT; far less
  // than a cross-region round trip.
  EXPECT_LT(result.latency_micros, 5'000u);
  EXPECT_EQ(cluster.server("db0")->Read("bench.kv", "k1"), "k1=v1");
  EXPECT_EQ(cluster.server("db0")->stats().writes_committed, 1u);
  EXPECT_EQ(cluster.server("db0")->stats().commits_degraded_to_async, 0u);
}

TEST(SemiSyncClusterTest, AsyncReplicasCatchUpAndApplyImmediately) {
  SemiSyncCluster cluster(DefaultOptions(6));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.SyncWrite("k" + std::to_string(i), "v").status.ok());
  }
  cluster.loop()->RunFor(2 * kSecond);
  for (const MemberId& id : cluster.database_ids()) {
    EXPECT_EQ(cluster.server(id)->Read("bench.kv", "k9"), "k9=v") << id;
  }
}

TEST(SemiSyncClusterTest, DegradesToAsyncWhenAckersDie) {
  auto options = DefaultOptions(7);
  options.server_defaults.ack_timeout_micros = 300'000;
  SemiSyncCluster cluster(options);
  ASSERT_TRUE(cluster.Bootstrap().ok());
  ASSERT_TRUE(cluster.SyncWrite("before", "v").status.ok());

  // Kill both in-region ackers: semi-sync degrades to async after the
  // timeout (rpl_semi_sync_master_timeout behaviour) instead of blocking.
  cluster.Crash("lt0a");
  cluster.Crash("lt0b");
  auto result = cluster.SyncWrite("after", "v", 3 * kSecond);
  ASSERT_TRUE(result.status.ok()) << result.status;
  EXPECT_GT(result.latency_micros, 300'000u);  // paid the ack timeout
  EXPECT_GT(cluster.server("db0")->stats().commits_degraded_to_async, 0u);
}

TEST(SemiSyncClusterTest, FailoverIsSlowAndExternallyDriven) {
  SemiSyncCluster cluster(DefaultOptions(8));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  ASSERT_TRUE(cluster.SyncWrite("pre", "v").status.ok());

  auto downtime = cluster.MeasureWriteDowntime(
      [&]() { cluster.Crash("db0"); });
  ASSERT_TRUE(downtime.recovered);
  // Detection sweeps + probes + fencing put this in the tens of seconds
  // (Table 2: 59 s average).
  EXPECT_GT(downtime.downtime_micros, 20ull * kSecond);
  EXPECT_LT(downtime.downtime_micros, 300ull * kSecond);

  const MemberId new_primary = cluster.CurrentPrimary();
  ASSERT_FALSE(new_primary.empty());
  EXPECT_NE(new_primary, "db0");
  cluster.loop()->RunFor(2 * kSecond);
  EXPECT_EQ(cluster.server(new_primary)->Read("bench.kv", "pre"), "pre=v");
  EXPECT_EQ(cluster.automation()->stats().failovers_completed, 1u);
}

TEST(SemiSyncClusterTest, GracefulPromotionTakesAboutASecond) {
  SemiSyncCluster cluster(DefaultOptions(9));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  ASSERT_TRUE(cluster.SyncWrite("warm", "v").status.ok());
  cluster.loop()->RunFor(kSecond);

  auto downtime = cluster.MeasureWriteDowntime([&]() {
    ASSERT_TRUE(cluster.automation()->StartPromotion("db1").ok());
  });
  ASSERT_TRUE(downtime.recovered);
  EXPECT_GT(downtime.downtime_micros, 200'000u);
  EXPECT_LT(downtime.downtime_micros, 5ull * kSecond);
  EXPECT_EQ(cluster.CurrentPrimary(), "db1");
  EXPECT_TRUE(cluster.server("db0")->read_only());
  EXPECT_EQ(cluster.automation()->stats().promotions_completed, 1u);
}

TEST(SemiSyncClusterTest, DeposedPrimaryIsFencedByGeneration) {
  SemiSyncCluster cluster(DefaultOptions(10));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  ASSERT_TRUE(cluster.SyncWrite("a", "1").status.ok());
  cluster.loop()->RunFor(kSecond);
  ASSERT_TRUE(cluster.automation()->StartPromotion("db1").ok());
  cluster.loop()->RunFor(5 * kSecond);
  ASSERT_EQ(cluster.CurrentPrimary(), "db1");

  // Force the deposed db0 to believe it is still primary (simulating the
  // split-brain the prior setup is vulnerable to) and write through it.
  ASSERT_TRUE(cluster.server("db0")
                  ->MakePrimary(/*generation=*/1, {"db1", "lt0a"}, {"lt0a"})
                  .ok());
  bool called = false;
  binlog::RowOperation op;
  op.kind = binlog::RowOperation::Kind::kInsert;
  op.database = "bench";
  op.table = "kv";
  op.after_image = "rogue=1";
  cluster.server("db0")->SubmitWrite({op}, [&](const SemiSyncWriteResult& r) {
    called = true;
  });
  cluster.loop()->RunFor(5 * kSecond);
  EXPECT_TRUE(called);  // degrades to async locally...
  // ...but the replicaset rejected the stale-generation stream.
  EXPECT_EQ(cluster.server("db1")->Read("bench.kv", "rogue"), std::nullopt);
  for (const MemberId& id : cluster.database_ids()) {
    if (id == "db0") continue;
    EXPECT_EQ(cluster.server(id)->Read("bench.kv", "rogue"), std::nullopt)
        << id;
  }
}

TEST(SemiSyncClusterTest, DivergedTailIsHealedOnRejoin) {
  auto options = DefaultOptions(11);
  options.server_defaults.ack_timeout_micros = 200'000;
  SemiSyncCluster cluster(options);
  ASSERT_TRUE(cluster.Bootstrap().ok());
  ASSERT_TRUE(cluster.SyncWrite("shared", "v").status.ok());
  cluster.loop()->RunFor(kSecond);

  // Isolate db0 so its next commit degrades to async and exists nowhere
  // else (the classic semi-sync data-loss window).
  for (const MemberId& id : cluster.ids()) {
    if (id != "db0") cluster.network()->SetLinkCut("db0", id, true);
  }
  auto lost = cluster.SyncWrite("lost", "v", 3 * kSecond);
  EXPECT_TRUE(lost.status.ok());  // degraded commit "succeeded"!
  cluster.Crash("db0");
  for (const MemberId& id : cluster.ids()) {
    if (id != "db0") cluster.network()->SetLinkCut("db0", id, false);
  }

  // Failover promotes someone else; the lost write is gone fleet-wide.
  auto downtime = cluster.MeasureWriteDowntime([]() {});
  ASSERT_TRUE(downtime.recovered);
  const MemberId new_primary = cluster.CurrentPrimary();
  ASSERT_FALSE(new_primary.empty());
  EXPECT_EQ(cluster.server(new_primary)->Read("bench.kv", "lost"),
            std::nullopt);

  // db0 rejoins; automation re-points it, its diverged binlog tail is
  // healed away, and the engine divergence (an acknowledged-but-lost
  // transaction: semi-sync's known flaw that MyRaft eliminates) is
  // flagged for rebuild.
  ASSERT_TRUE(cluster.Restart("db0").ok());
  ASSERT_TRUE(cluster.SyncWrite("newer", "v").status.ok());
  cluster.loop()->RunFor(30 * kSecond);
  EXPECT_GT(cluster.server("db0")->stats().healed_transactions, 0u);
  EXPECT_TRUE(cluster.server("db0")->engine_diverged());
  // The binlog no longer has the lost gtid, but the engine still carries
  // the phantom row until the host is rebuilt — exactly the edge case
  // described in the paper's motivation.
  EXPECT_FALSE(cluster.server("db0")->binlog_manager()->gtids_in_log().Count() ==
               0);
  EXPECT_EQ(cluster.server("db0")->Read("bench.kv", "newer"), "newer=v");
}

}  // namespace
}  // namespace myraft::semisync

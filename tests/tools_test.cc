// Operational tooling tests: enable-raft migration (§5.2), Quorum Fixer
// (§5.3) and MyShadow shadow-testing loops (§5.1), plus workload drivers.

#include <gtest/gtest.h>

#include "flexiraft/flexiraft.h"
#include "tools/enable_raft.h"
#include "tools/myshadow.h"
#include "tools/quorum_fixer.h"
#include "workload/workload.h"

namespace myraft::tools {
namespace {

using flexiraft::FlexiRaftQuorumEngine;
using flexiraft::QuorumMode;
constexpr uint64_t kSecond = 1'000'000;

const raft::QuorumEngine* FlexiEngine() {
  static FlexiRaftQuorumEngine* engine =
      new FlexiRaftQuorumEngine({QuorumMode::kSingleRegionDynamic});
  return engine;
}

TEST(EnableRaftTest, MigratesLiveSemiSyncReplicaset) {
  semisync::SemiSyncClusterOptions semisync_options;
  semisync_options.seed = 77;
  semisync_options.db_regions = 3;
  semisync::SemiSyncCluster cluster(semisync_options);
  ASSERT_TRUE(cluster.Bootstrap().ok());

  // Live data before migration.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(cluster.SyncWrite("pre" + std::to_string(i), "v").status.ok());
  }
  cluster.loop()->RunFor(2 * kSecond);

  EnableRaftOptions options;
  auto result = EnableRaft(&cluster, FlexiEngine(), options);
  ASSERT_TRUE(result.status.ok()) << result.status;
  // §5.2: "a small amount of write unavailability (usually a few seconds)".
  EXPECT_LT(result.write_unavailability_micros, 15ull * kSecond);
  ASSERT_FALSE(result.raft_nodes.empty());

  // The migrated ring serves writes and kept all pre-migration data.
  auto primary = cluster.discovery()->GetPrimary("rs0");
  ASSERT_TRUE(primary.has_value());
  sim::SimNode* primary_node = result.raft_nodes.at(*primary).get();
  EXPECT_TRUE(primary_node->server()->writes_enabled());
  EXPECT_EQ(primary_node->server()->Read("bench.kv", "pre19"), "pre19=v");

  bool done = false;
  binlog::RowOperation op;
  op.kind = binlog::RowOperation::Kind::kInsert;
  op.database = "bench";
  op.table = "kv";
  op.after_image = "post=migration";
  primary_node->server()->SubmitWrite({op}, [&](const server::WriteResult& r) {
    done = true;
    EXPECT_TRUE(r.status.ok()) << r.status;
  });
  cluster.loop()->RunFor(2 * kSecond);
  EXPECT_TRUE(done);
  EXPECT_EQ(primary_node->server()->Read("bench.kv", "post"),
            "post=migration");
}

TEST(EnableRaftTest, RefusesUnsafeTargets) {
  semisync::SemiSyncClusterOptions semisync_options;
  semisync_options.seed = 78;
  semisync::SemiSyncCluster cluster(semisync_options);
  ASSERT_TRUE(cluster.Bootstrap().ok());
  cluster.Crash("lt1a");  // a member is down -> not a suitable target
  auto result = EnableRaft(&cluster, FlexiEngine(), EnableRaftOptions());
  EXPECT_FALSE(result.status.ok());
  // The semisync ring keeps working.
  EXPECT_TRUE(cluster.SyncWrite("still", "alive").status.ok());
}

sim::ClusterOptions RaftClusterOptions(uint64_t seed) {
  sim::ClusterOptions options;
  options.seed = seed;
  options.topology.db_regions = 3;
  options.topology.logtailers_per_db = 2;
  return options;
}

TEST(QuorumFixerTest, RestoresShatteredQuorum) {
  sim::ClusterHarness cluster(RaftClusterOptions(31), FlexiEngine());
  ASSERT_TRUE(cluster.Bootstrap().ok());
  const MemberId primary = cluster.WaitForPrimary(30 * kSecond);
  ASSERT_FALSE(primary.empty());
  ASSERT_TRUE(cluster.SyncWrite("precious", "data").status.ok());
  cluster.loop()->RunFor(2 * kSecond);

  // Shatter the data quorum: kill the primary AND its whole region's
  // logtailers, so the single-region-dynamic election quorum (which needs
  // the last leader's region) is unsatisfiable.
  const RegionId home = cluster.node(primary)->region();
  for (const MemberId& id : cluster.ids()) {
    if (cluster.node(id)->region() == home) cluster.Crash(id);
  }
  cluster.loop()->RunFor(20 * kSecond);
  EXPECT_EQ(cluster.CurrentPrimary(), "");

  QuorumFixerOptions options;
  auto report = RunQuorumFixer(&cluster, options);
  ASSERT_TRUE(report.status.ok()) << report.status;
  EXPECT_TRUE(report.quorum_was_shattered);
  EXPECT_FALSE(report.chosen.empty());

  // Availability restored; committed data intact.
  cluster.loop()->RunFor(10 * kSecond);
  const MemberId new_primary = cluster.WaitForPrimary(30 * kSecond);
  ASSERT_FALSE(new_primary.empty());
  EXPECT_TRUE(cluster.SyncWrite("alive", "again").status.ok());
  EXPECT_EQ(cluster.node(new_primary)->server()->Read("bench.kv", "precious"),
            "precious=data");
}

TEST(QuorumFixerTest, LoglessRepairExcisesDeadVotersInOneForcedBump) {
  // §15 pinned schedule: on a logless-reconfig ring the fixer does not
  // stop at restoring a leader — step 5 rebuilds the membership itself,
  // demoting every dead voter in ONE forced config bump (the force path
  // exists precisely because the single-change rule cannot be satisfied
  // when the old quorum is dead) and pinning quorum_spec to "majority"
  // so the survivors alone form every future quorum.
  sim::ClusterOptions cluster_options = RaftClusterOptions(34);
  cluster_options.raft.enable_logless_reconfig = true;
  sim::ClusterHarness cluster(cluster_options, FlexiEngine());
  ASSERT_TRUE(cluster.Bootstrap().ok());
  const MemberId primary = cluster.WaitForPrimary(30 * kSecond);
  ASSERT_FALSE(primary.empty());
  ASSERT_TRUE(cluster.SyncWrite("precious", "data").status.ok());
  cluster.loop()->RunFor(2 * kSecond);

  // Kill the primary's whole region: 3 of 9 voters dead, including the
  // only region that can satisfy the single-region-dynamic election
  // quorum.
  const RegionId home = cluster.node(primary)->region();
  std::vector<MemberId> dead;
  for (const MemberId& id : cluster.ids()) {
    if (cluster.node(id)->region() == home) {
      cluster.Crash(id);
      dead.push_back(id);
    }
  }
  ASSERT_EQ(dead.size(), 3u);
  cluster.loop()->RunFor(20 * kSecond);
  EXPECT_EQ(cluster.CurrentPrimary(), "");

  auto report = RunQuorumFixer(&cluster, QuorumFixerOptions());
  ASSERT_TRUE(report.status.ok()) << report.status;
  EXPECT_TRUE(report.quorum_was_shattered);
  EXPECT_TRUE(report.forced_reconfig);
  EXPECT_EQ(report.voters_excised, 3);

  cluster.loop()->RunFor(10 * kSecond);
  const MemberId new_primary = cluster.WaitForPrimary(30 * kSecond);
  ASSERT_FALSE(new_primary.empty());
  raft::RaftConsensus* leader =
      cluster.node(new_primary)->server()->consensus();
  // The repaired config committed (install quorum of the survivors),
  // keeps the dead members as non-voting learners for operators to
  // revive or retire, and pins the majority quorum spec.
  EXPECT_FALSE(leader->has_pending_config_change());
  EXPECT_EQ(leader->config().quorum_spec, "majority");
  for (const MemberId& id : dead) {
    const MemberInfo* info = leader->config().Find(id);
    ASSERT_NE(info, nullptr) << id;
    EXPECT_EQ(info->type, RaftMemberType::kNonVoter) << id;
  }

  // Availability restored; committed data intact.
  EXPECT_TRUE(cluster.SyncWrite("alive", "again").status.ok());
  EXPECT_EQ(cluster.node(new_primary)->server()->Read("bench.kv", "precious"),
            "precious=data");

  // Revived members rejoin as learners under the forced config — they
  // install the (term, version)-newer config and stop being voters, so
  // they can never resurrect the dead quorum.
  for (const MemberId& id : dead) {
    ASSERT_TRUE(cluster.Restart(id).ok()) << id;
  }
  cluster.loop()->RunFor(10 * kSecond);
  for (const MemberId& id : dead) {
    raft::RaftConsensus* revived = cluster.node(id)->server()->consensus();
    EXPECT_TRUE(revived->config().SameIdAs(leader->config())) << id;
    EXPECT_NE(revived->role(), RaftRole::kLeader) << id;
  }
  EXPECT_TRUE(cluster.SyncWrite("post-revival", "v").status.ok());
}

TEST(QuorumFixerTest, RefusesHealthyRing) {
  sim::ClusterHarness cluster(RaftClusterOptions(32), FlexiEngine());
  ASSERT_TRUE(cluster.Bootstrap().ok());
  ASSERT_FALSE(cluster.WaitForPrimary(30 * kSecond).empty());
  auto report = RunQuorumFixer(&cluster, QuorumFixerOptions());
  EXPECT_FALSE(report.status.ok());
  EXPECT_FALSE(report.quorum_was_shattered);
}

TEST(MyShadowTest, FailureAndFunctionalRoundsFindNoViolations) {
  sim::ClusterHarness cluster(RaftClusterOptions(33), FlexiEngine());
  ASSERT_TRUE(cluster.Bootstrap().ok());

  MyShadowOptions options;
  options.failure_injection_rounds = 3;
  options.functional_rounds = 3;
  options.workload_rate_per_sec = 50;
  auto report = RunMyShadow(&cluster, options);
  ASSERT_TRUE(report.status.ok()) << report.status;
  EXPECT_EQ(report.rounds_run, 6);
  EXPECT_EQ(report.consistency_violations, 0);
  EXPECT_EQ(report.durability_violations, 0);
  EXPECT_GT(report.writes_committed, 0u);
  EXPECT_EQ(report.failover_downtime_micros.count(), 3u);
  // Failovers are slower than graceful promotions.
  EXPECT_GT(report.failover_downtime_micros.Mean(),
            report.promotion_downtime_micros.Mean());
}

TEST(WorkloadDriverTest, OpenLoopRatesAndRecording) {
  sim::EventLoop loop(3);
  // Fake instant-commit write path.
  workload::WorkloadOptions options;
  options.kind = workload::WorkloadKind::kProductionLike;
  options.arrival_rate_per_sec = 1000;
  options.duration_micros = 2 * kSecond;
  options.seed = 4;
  workload::WorkloadDriver driver(
      &loop, options,
      [&loop](const std::string& key, const std::string& value,
              std::function<void(bool, uint64_t)> done) {
        loop.Schedule(500 + (key.size() % 7) * 100,
                      [done]() { done(true, 0); });
      });
  driver.RunToCompletion();
  const auto& recorder = driver.recorder();
  // ~1000/s for 2s with Poisson noise.
  EXPECT_GT(recorder.committed(), 1600u);
  EXPECT_LT(recorder.committed(), 2400u);
  EXPECT_EQ(recorder.failed(), 0u);
  EXPECT_GT(recorder.latency().Mean(), 400.0);
  const auto series = driver.recorder().ThroughputSeries(kSecond);
  EXPECT_GE(series.size(), 2u);
}

TEST(WorkloadDriverTest, ClosedLoopTracksServiceRate) {
  sim::EventLoop loop(5);
  workload::WorkloadOptions options;
  options.kind = workload::WorkloadKind::kSysbenchWrite;
  options.closed_loop_workers = 4;
  options.duration_micros = 1 * kSecond;
  workload::WorkloadDriver driver(
      &loop, options,
      [&loop](const std::string&, const std::string& value,
              std::function<void(bool, uint64_t)> done) {
        loop.Schedule(1000, [done]() { done(true, 1000); });
      });
  driver.RunToCompletion();
  // 4 workers, 1ms service time, 1s window -> ~4000 ops.
  EXPECT_GT(driver.recorder().committed(), 3500u);
  EXPECT_LT(driver.recorder().committed(), 4500u);
  // Fixed-size sysbench rows.
  EXPECT_EQ(driver.recorder().latency().min(),
            driver.recorder().latency().max());
}

}  // namespace
}  // namespace myraft::tools

// Fleet-layer tests (DESIGN.md §16): N Raft rings in one process over
// the shared simulator. Covered here:
//   - the distributed lock's FIFO grant order and TTL fencing;
//   - N-shard bootstrap determinism (same seed => byte-identical
//     fleet raftstat) and per-shard metric namespacing in the rollup;
//   - the leader-balancing placement policy converging from the
//     maximally-skewed placement;
//   - a region-outage failover storm recovering every shard;
//   - the §5.2 enable-raft rollout admitting exactly one concurrent
//     shard migration no matter how many workers contend.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fleet/fleet.h"
#include "fleet/lock.h"
#include "fleet/rollout.h"
#include "flexiraft/flexiraft.h"

namespace myraft::fleet {
namespace {

constexpr uint64_t kSecond = 1'000'000;

const raft::QuorumEngine* FlexiEngine() {
  static auto* engine = new flexiraft::FlexiRaftQuorumEngine(
      {flexiraft::QuorumMode::kSingleRegionDynamic});
  return engine;
}

// Multi-region commit quorums so a one-region outage is survivable and
// the storm is a mass automatic failover (see bench_fleet.cc).
const raft::QuorumEngine* MultiRegionEngine() {
  static auto* engine = new flexiraft::FlexiRaftQuorumEngine(
      {flexiraft::QuorumMode::kMultiRegion});
  return engine;
}

FleetOptions SmallFleet(int shards, uint64_t seed = 1) {
  FleetOptions options;
  options.shards = shards;
  options.regions = 3;
  options.seed = seed;
  options.trace_capacity = 64;
  return options;
}

// --- DistributedLock ---------------------------------------------------------

TEST(DistributedLockTest, GrantsFifoAcrossContendingOwners) {
  sim::EventLoop loop(1);
  DistributedLock lock(&loop, "enable-raft", {});

  std::vector<std::string> order;
  lock.Acquire("a", [&] { order.push_back("a"); });
  lock.Acquire("b", [&] { order.push_back("b"); });
  lock.Acquire("c", [&] { order.push_back("c"); });
  loop.RunFor(10'000);

  // Only the head holds; the rest queue FIFO.
  ASSERT_EQ(order, std::vector<std::string>({"a"}));
  EXPECT_EQ(lock.holder(), "a");
  EXPECT_EQ(lock.waiters(), 2u);

  lock.Release("a");
  loop.RunFor(10'000);
  ASSERT_EQ(order, std::vector<std::string>({"a", "b"}));

  // A non-holder's release is ignored.
  lock.Release("a");
  loop.RunFor(10'000);
  EXPECT_EQ(lock.holder(), "b");

  lock.Release("b");
  loop.RunFor(10'000);
  EXPECT_EQ(order, std::vector<std::string>({"a", "b", "c"}));
  EXPECT_EQ(lock.grants(), 3u);
}

TEST(DistributedLockTest, TtlFencesAHolderThatNeverReleases) {
  sim::EventLoop loop(1);
  DistributedLock::Options options;
  options.ttl_micros = 50'000;
  DistributedLock lock(&loop, "enable-raft", options);

  bool b_granted = false;
  lock.Acquire("crashed-operator", [] {});
  lock.Acquire("b", [&] { b_granted = true; });
  loop.RunFor(10'000);
  ASSERT_EQ(lock.holder(), "crashed-operator");
  ASSERT_FALSE(b_granted);

  // The holder never releases; the TTL fences it and moves the lock on.
  // (Run just past one TTL + grant RPC — "b" is subject to the same TTL
  // once granted.)
  loop.RunFor(60'000);
  EXPECT_TRUE(b_granted);
  EXPECT_EQ(lock.holder(), "b");
  EXPECT_EQ(lock.expirations(), 1u);

  // The fenced holder's late release must not yank the lock from "b".
  lock.Release("crashed-operator");
  EXPECT_EQ(lock.holder(), "b");
  lock.Release("b");
  EXPECT_FALSE(lock.held());
}

// --- Fleet bootstrap ---------------------------------------------------------

TEST(FleetHarnessTest, BootstrapIsDeterministicPerSeed) {
  std::string raftstat[2];
  for (int run = 0; run < 2; ++run) {
    FleetHarness fleet(SmallFleet(6, 7), FlexiEngine());
    ASSERT_TRUE(fleet.Bootstrap().ok());
    ASSERT_EQ(fleet.WaitForAllPrimaries(60 * kSecond), 6);
    fleet.loop()->RunFor(2 * kSecond);
    raftstat[run] = fleet.RaftstatJson();
  }
  // Same seed => byte-identical fleet-wide raftstat (terms, indexes,
  // leaders, timestamps — everything).
  EXPECT_EQ(raftstat[0], raftstat[1]);
  EXPECT_NE(raftstat[0].find("\"rs0\""), std::string::npos);
  EXPECT_NE(raftstat[0].find("\"rs5\""), std::string::npos);
}

TEST(FleetHarnessTest, RollupNamespacesShardsAndSharesNetwork) {
  FleetHarness fleet(SmallFleet(4), FlexiEngine());
  ASSERT_TRUE(fleet.Bootstrap().ok());
  ASSERT_EQ(fleet.WaitForAllPrimaries(60 * kSecond), 4);

  const metrics::MetricSnapshot rollup = fleet.MetricsRollup();
  // Every shard's counters appear under its own namespace: no collisions,
  // nothing silently merged.
  for (int s = 0; s < 4; ++s) {
    const std::string key =
        "shard.rs" + std::to_string(s) + ".raft.elections_won";
    EXPECT_TRUE(rollup.counters.count(key)) << key;
  }
  EXPECT_FALSE(rollup.counters.count("raft.elections_won"));
  // The shared network's counters ride along un-namespaced.
  EXPECT_TRUE(rollup.counters.count("net.dropped"));

  EXPECT_EQ(fleet.FindShard("rs2"), 2);
  EXPECT_EQ(fleet.FindShard("nope"), -1);
}

// --- Placement policy --------------------------------------------------------

TEST(FleetHarnessTest, RebalanceConvergesFromSkewedPlacement) {
  FleetOptions options = SmallFleet(9);
  // Every ring starts at region0, so each shard's db0 voter lives there.
  options.rotate_home_regions = false;
  FleetHarness fleet(options, FlexiEngine());
  ASSERT_TRUE(fleet.Bootstrap().ok());
  ASSERT_EQ(fleet.WaitForAllPrimaries(60 * kSecond), 9);

  // Manufacture the maximally-skewed placement: park every ring's leader
  // on its region0 db voter (initial election winners are whichever
  // node's timeout fired first, not the home region).
  const uint64_t skew_deadline = fleet.loop()->now() + 120 * kSecond;
  while (fleet.LeadersByRegion()["region0"] < 9 &&
         fleet.loop()->now() < skew_deadline) {
    for (int s = 0; s < 9; ++s) {
      if (fleet.shard(s)->PrimaryRegion() == "region0") continue;
      fleet.admin(s)->TransferLeadership("rs" + std::to_string(s) + ".db0");
    }
    fleet.loop()->RunFor(2 * kSecond);
  }
  ASSERT_EQ(fleet.LeadersByRegion()["region0"], 9);
  ASSERT_GE(fleet.LeaderImbalance(), 9);

  // Drive rebalance ticks until the spread converges (transfers complete
  // asynchronously, so tick + run + re-check).
  const uint64_t deadline = fleet.loop()->now() + 120 * kSecond;
  while (fleet.LeaderImbalance() > 1 && fleet.loop()->now() < deadline) {
    fleet.RebalanceTick();
    fleet.loop()->RunFor(2 * kSecond);
  }
  EXPECT_LE(fleet.LeaderImbalance(), 1);
  EXPECT_EQ(fleet.ShardsWithPrimary(), 9);
  // 9 leaders over 3 regions, spread <= 1 => balanced 3/3/3.
  std::map<RegionId, int> leaders = fleet.LeadersByRegion();
  EXPECT_EQ(leaders["region0"], 3);
  EXPECT_EQ(leaders["region1"], 3);
  EXPECT_EQ(leaders["region2"], 3);
  EXPECT_GT(
      fleet.fleet_metrics()->GetCounter("fleet.leader_transfers")->value(),
      0u);
}

// --- Region-outage storm -----------------------------------------------------

TEST(FleetHarnessTest, RegionOutageStormRecoversEveryShard) {
  FleetHarness fleet(SmallFleet(9), MultiRegionEngine());
  ASSERT_TRUE(fleet.Bootstrap().ok());
  ASSERT_EQ(fleet.WaitForAllPrimaries(120 * kSecond), 9);
  ASSERT_GT(fleet.LeadersByRegion()["region0"], 0);

  fleet.network()->SetRegionPartitioned("region0", true);
  auto failed_over = [&fleet] {
    int count = 0;
    for (int s = 0; s < 9; ++s) {
      const RegionId region = fleet.shard(s)->PrimaryRegion();
      if (!region.empty() && region != "region0") ++count;
    }
    return count;
  };
  const uint64_t deadline = fleet.loop()->now() + 120 * kSecond;
  while (failed_over() < 9 && fleet.loop()->now() < deadline) {
    fleet.loop()->RunFor(10'000);
  }
  // Every ring serves from outside the dead region.
  EXPECT_EQ(failed_over(), 9);
  EXPECT_EQ(fleet.LeadersByRegion()["region0"], 0);

  fleet.network()->SetRegionPartitioned("region0", false);
  EXPECT_EQ(fleet.WaitForAllPrimaries(120 * kSecond), 9);
  for (int s = 0; s < 9; ++s) {
    EXPECT_TRUE(fleet.shard(s)->CheckReplicaConsistency()) << "shard " << s;
  }
}

// --- enable-raft rollout (§5.2) ----------------------------------------------

TEST(EnableRaftRolloutTest, LockAdmitsOneMigrationDespiteManyWorkers) {
  FleetOptions options = SmallFleet(8);
  options.pending_shards = 8;  // the whole fleet starts dark
  FleetHarness fleet(options, FlexiEngine());
  ASSERT_TRUE(fleet.Bootstrap().ok());
  ASSERT_EQ(fleet.ShardsWithPrimary(), 0);
  ASSERT_EQ(fleet.PendingShards().size(), 8u);

  DistributedLock lock(fleet.loop(), "enable-raft",
                       {.metrics = fleet.fleet_metrics()});
  RolloutOptions rollout_options;
  rollout_options.workers = 4;  // four automation jobs race for the lock
  EnableRaftRollout rollout(&fleet, &lock, rollout_options);
  ASSERT_TRUE(rollout.RunToCompletion(600 * kSecond).ok());

  EXPECT_EQ(rollout.migrated(), 8);
  EXPECT_EQ(rollout.failed(), 0);
  // The §5.2 invariant: the lock serialises migrations to one at a time
  // no matter how many workers contend.
  EXPECT_EQ(rollout.max_concurrent_migrations(), 1);
  EXPECT_EQ(lock.grants(), 8u);

  EXPECT_TRUE(fleet.PendingShards().empty());
  EXPECT_EQ(fleet.WaitForAllPrimaries(60 * kSecond), 8);
  // Post-rollout the fleet really serves: one write per migrated shard.
  for (int s = 0; s < 8; ++s) {
    const sim::ClientWriteResult result =
        fleet.client(s)->SyncWrite("k", "v", 10 * kSecond);
    EXPECT_TRUE(result.status.ok()) << "shard " << s;
  }
}

}  // namespace
}  // namespace myraft::fleet

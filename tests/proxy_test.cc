// Proxying (§4.2): replication through relays with payload
// reconstitution, bandwidth savings on cross-region links, degrade to
// heartbeat, route-around of dead relays, and votes staying peer-to-peer.

#include "proxy/proxy_router.h"

#include <gtest/gtest.h>

#include "flexiraft/flexiraft.h"
#include "raft_test_harness.h"

namespace myraft::proxy {
namespace {

using flexiraft::FlexiRaftQuorumEngine;
using flexiraft::QuorumMode;
using raft_test::RaftTestCluster;
using raft_test::TestNode;
constexpr uint64_t kSecond = 1'000'000;

/// Cluster harness variant with a ProxyRouter between each consensus and
/// the network.
class ProxyCluster {
 public:
  ProxyCluster(uint64_t seed, ProxyOptions proxy_options)
      : cluster_(seed), proxy_options_(proxy_options) {}

  void AddPaperTopology(int regions = 3, int logtailers_per_region = 2) {
    for (int r = 0; r < regions; ++r) {
      const std::string region = "r" + std::to_string(r);
      cluster_.AddMemberSpec("db" + std::to_string(r), region,
                             MemberKind::kMySql);
      for (int l = 0; l < logtailers_per_region; ++l) {
        cluster_.AddMemberSpec(
            StringPrintf("lt%d%c", r, static_cast<char>('a' + l)), region,
            MemberKind::kLogtailer);
      }
    }
  }

  void Start(const raft::QuorumEngine* quorum) {
    raft::RaftOptions options;
    options.heartbeat_interval_micros = 500'000;
    cluster_.StartAll(quorum, options);
    // Interpose routers both ways: consensus outbox -> router -> network
    // on the way out, network -> router -> consensus on the way in.
    for (const MemberId& id : cluster_.ids()) {
      TestNode* node = cluster_.node(id);
      auto router = std::make_unique<ProxyRouter>(
          id, node->region(), proxy_options_, cluster_.loop(),
          [this, id](Message m) { cluster_.network()->Send(id, std::move(m)); });
      router->BindConsensus(node->consensus());
      ProxyRouter* raw = router.get();
      node->set_outbound_hook([raw](Message m) { raw->Send(std::move(m)); });
      cluster_.network()->RegisterNode(
          id, node->region(),
          [node, raw](const MemberId& physical_from, const Message& m) {
            raw->ObserveTraffic(physical_from);
            if (!raw->HandleInbound(m)) node->Deliver(m);
          });
      routers_[id] = std::move(router);
    }
  }

  RaftTestCluster* cluster() { return &cluster_; }
  ProxyRouter* router(const MemberId& id) { return routers_.at(id).get(); }

 private:
  RaftTestCluster cluster_;
  ProxyOptions proxy_options_;
  std::map<MemberId, std::unique_ptr<ProxyRouter>> routers_;
};

TEST(ProxyRouterTest, LeaderStripsPayloadForRemoteNonRelayMembers) {
  // Router-level unit test with a captured send function.
  sim::EventLoop loop(1);
  std::vector<Message> sent;
  ProxyOptions options;
  ProxyRouter router("db0", "r0", options, &loop,
                     [&](Message m) { sent.push_back(std::move(m)); });

  // Minimal consensus for config/cache/log access.
  auto env = NewMemEnv();
  raft::ConsensusMetadataStore meta(env.get(), "/m");
  raft::MemLog log;
  static raft::MajorityQuorumEngine quorum;
  Random rng(7);
  struct NullOutbox : raft::RaftOutbox {
    void Send(Message) override {}
  } null_outbox;
  raft::StateMachineListener listener;
  raft::RaftOptions raft_options;
  raft_options.self = "db0";
  raft_options.region = "r0";
  raft::RaftConsensus consensus(raft_options, &log, &quorum, &meta,
                                loop.clock(), &rng, &null_outbox, &listener);
  MembershipConfig config;
  config.members = {
      {"db0", "r0", MemberKind::kMySql, RaftMemberType::kVoter},
      {"db1", "r1", MemberKind::kMySql, RaftMemberType::kVoter},
      {"lt1a", "r1", MemberKind::kLogtailer, RaftMemberType::kVoter},
  };
  ASSERT_TRUE(consensus.Bootstrap(config).ok());
  router.BindConsensus(&consensus);

  AppendEntriesRequest request;
  request.leader = "db0";
  request.term = 1;
  request.entries.push_back(
      LogEntry::Make({1, 1}, EntryType::kTransaction, std::string(500, 'x')));

  // To the remote relay itself (db1, the region's mysql): direct + full.
  request.dest = "db1";
  router.Send(Message(request));
  ASSERT_EQ(sent.size(), 1u);
  {
    const auto& out = std::get<AppendEntriesRequest>(sent[0]);
    EXPECT_FALSE(out.proxy_payload_omitted);
    EXPECT_TRUE(out.route.empty());
    EXPECT_EQ(out.PayloadBytes(), 500u);
  }

  // To the remote logtailer: PROXY_OP through db1.
  request.dest = "lt1a";
  router.Send(Message(request));
  ASSERT_EQ(sent.size(), 2u);
  {
    const auto& out = std::get<AppendEntriesRequest>(sent[1]);
    EXPECT_TRUE(out.proxy_payload_omitted);
    ASSERT_EQ(out.route, std::vector<MemberId>{"db1"});
    EXPECT_EQ(out.PayloadBytes(), 0u);
    EXPECT_EQ(out.entries[0].checksum, request.entries[0].checksum);
  }

  // Same-region member: never proxied. Votes: never proxied.
  VoteRequest vote;
  vote.candidate = "db0";
  vote.dest = "lt1a";
  router.Send(Message(vote));
  ASSERT_EQ(sent.size(), 3u);
  EXPECT_TRUE(std::holds_alternative<VoteRequest>(sent[2]));
  EXPECT_EQ(router.stats().proxied_requests, 1u);
  EXPECT_EQ(router.stats().direct_requests, 1u);
}

TEST(ProxyClusterTest, ReplicationFlowsThroughRelaysAndConverges) {
  ProxyOptions proxy_options;
  static FlexiRaftQuorumEngine engine({QuorumMode::kSingleRegionDynamic});
  ProxyCluster proxy_cluster(42, proxy_options);
  proxy_cluster.AddPaperTopology();
  proxy_cluster.Start(&engine);
  RaftTestCluster* cluster = proxy_cluster.cluster();

  ASSERT_FALSE(cluster->WaitForLeader(10 * kSecond).empty());
  // A logtailer can win the bootstrap race as a temporary witness leader
  // (§2.2); let its automatic handoff to a database replica settle so
  // the replication burst below runs under a stable leader.
  cluster->loop()->RunFor(2 * kSecond);
  const MemberId leader_id = cluster->CurrentLeader();
  ASSERT_FALSE(leader_id.empty());
  raft::RaftConsensus* leader = cluster->node(leader_id)->consensus();

  OpId last;
  for (int i = 0; i < 30; ++i) {
    auto opid =
        leader->Replicate(EntryType::kNoOp, std::string(500, 'a' + i % 26));
    ASSERT_TRUE(opid.ok());
    last = *opid;
  }
  ASSERT_TRUE(cluster->WaitForCommit(leader_id, last, 5 * kSecond));
  cluster->loop()->RunFor(5 * kSecond);

  // Everyone converges even though remote members only got PROXY_OPs.
  for (const MemberId& id : cluster->ids()) {
    EXPECT_EQ(cluster->node(id)->consensus()->last_logged(), last) << id;
  }
  // Entries were reconstituted at remote relays.
  uint64_t total_reconstitutions = 0;
  for (const MemberId& id : cluster->ids()) {
    total_reconstitutions += proxy_cluster.router(id)->stats().reconstitutions;
  }
  EXPECT_GT(total_reconstitutions, 0u);
}

TEST(ProxyClusterTest, ProxySavesCrossRegionBytes) {
  // Same workload with proxying on vs off; cross-region bytes must drop
  // by roughly the remote fan-out factor (§4.2.2).
  static FlexiRaftQuorumEngine engine({QuorumMode::kSingleRegionDynamic});
  uint64_t bytes_with_proxy = 0, bytes_without = 0;
  for (const bool proxy_on : {true, false}) {
    ProxyOptions proxy_options;
    proxy_options.enabled = proxy_on;
    ProxyCluster proxy_cluster(77, proxy_options);
    proxy_cluster.AddPaperTopology();
    proxy_cluster.Start(&engine);
    RaftTestCluster* cluster = proxy_cluster.cluster();
    ASSERT_FALSE(cluster->WaitForLeader(10 * kSecond).empty());
    cluster->loop()->RunFor(2 * kSecond);  // settle any witness handoff
    const MemberId leader_id = cluster->CurrentLeader();
    ASSERT_FALSE(leader_id.empty());
    raft::RaftConsensus* leader = cluster->node(leader_id)->consensus();
    cluster->loop()->RunFor(kSecond);
    cluster->network()->ResetStats();

    OpId last;
    for (int i = 0; i < 50; ++i) {
      auto opid = leader->Replicate(
          EntryType::kNoOp, std::string(500, static_cast<char>('a' + i % 26)));
      ASSERT_TRUE(opid.ok());
      last = *opid;
      cluster->loop()->RunFor(20'000);
    }
    cluster->loop()->RunFor(2 * kSecond);
    for (const MemberId& id : cluster->ids()) {
      ASSERT_EQ(cluster->node(id)->consensus()->last_logged(), last)
          << id << " proxy=" << proxy_on;
    }
    (proxy_on ? bytes_with_proxy : bytes_without) =
        cluster->network()->CrossRegionBytes();
  }
  // Each remote region has 3 members; with proxying only 1 full copy +
  // 2 small PROXY_OPs cross the WAN.
  EXPECT_LT(bytes_with_proxy, bytes_without * 2 / 3)
      << "with=" << bytes_with_proxy << " without=" << bytes_without;
}

TEST(ProxyClusterTest, DeadRelayIsRoutedAround) {
  static FlexiRaftQuorumEngine engine({QuorumMode::kSingleRegionDynamic});
  ProxyOptions proxy_options;
  proxy_options.relay_unhealthy_after_micros = 2 * kSecond;
  ProxyCluster proxy_cluster(4242, proxy_options);
  proxy_cluster.AddPaperTopology();
  proxy_cluster.Start(&engine);
  RaftTestCluster* cluster = proxy_cluster.cluster();

  ASSERT_FALSE(cluster->WaitForLeader(10 * kSecond).empty());
  cluster->loop()->RunFor(2 * kSecond);  // settle any witness handoff
  const MemberId leader_id = cluster->CurrentLeader();
  ASSERT_FALSE(leader_id.empty());
  raft::RaftConsensus* leader = cluster->node(leader_id)->consensus();
  const RegionId home = cluster->node(leader_id)->region();

  // Find a remote region and kill its preferred relay (the mysql member).
  RegionId remote;
  for (const MemberId& id : cluster->ids()) {
    if (cluster->node(id)->region() != home) {
      remote = cluster->node(id)->region();
      break;
    }
  }
  MemberId relay, downstream;
  for (const MemberId& id : cluster->ids()) {
    if (cluster->node(id)->region() != remote) continue;
    if (cluster->node(id)->kind() == MemberKind::kMySql) {
      relay = id;
    } else if (downstream.empty()) {
      downstream = id;
    }
  }
  ASSERT_FALSE(relay.empty());
  ASSERT_FALSE(downstream.empty());
  cluster->Crash(relay);
  cluster->loop()->RunFor(3 * kSecond);  // let health tracking notice

  OpId last;
  for (int i = 0; i < 10; ++i) {
    auto opid = leader->Replicate(EntryType::kNoOp, std::string(300, 'z'));
    ASSERT_TRUE(opid.ok());
    last = *opid;
    cluster->loop()->RunFor(100'000);
  }
  cluster->loop()->RunFor(3 * kSecond);
  // The downstream member still converges: the leader routed around the
  // dead relay (either via the surviving logtailer or directly).
  EXPECT_EQ(cluster->node(downstream)->consensus()->last_logged(), last);
}

TEST(ProxyClusterTest, MissingEntryDegradesToHeartbeatThenRecovers) {
  static FlexiRaftQuorumEngine engine({QuorumMode::kSingleRegionDynamic});
  ProxyOptions proxy_options;
  proxy_options.reconstitute_wait_micros = 30'000;  // short wait
  ProxyCluster proxy_cluster(11, proxy_options);
  proxy_cluster.AddPaperTopology();
  proxy_cluster.Start(&engine);
  RaftTestCluster* cluster = proxy_cluster.cluster();

  ASSERT_FALSE(cluster->WaitForLeader(10 * kSecond).empty());
  cluster->loop()->RunFor(2 * kSecond);  // settle any witness handoff
  const MemberId leader_id = cluster->CurrentLeader();
  ASSERT_FALSE(leader_id.empty());
  raft::RaftConsensus* leader = cluster->node(leader_id)->consensus();
  const RegionId home = cluster->node(leader_id)->region();

  // Delay one remote relay heavily so PROXY_OPs reach other members of
  // its region before the relay has the entry.
  MemberId relay;
  for (const MemberId& id : cluster->ids()) {
    if (cluster->node(id)->region() != home &&
        cluster->node(id)->kind() == MemberKind::kMySql) {
      relay = id;
      break;
    }
  }
  ASSERT_FALSE(relay.empty());
  cluster->network()->SetNodeExtraDelay(relay, 200'000);  // +200 ms

  OpId last;
  for (int i = 0; i < 10; ++i) {
    auto opid = leader->Replicate(EntryType::kNoOp, std::string(300, 'q'));
    ASSERT_TRUE(opid.ok());
    last = *opid;
    cluster->loop()->RunFor(50'000);
  }
  cluster->loop()->RunFor(5 * kSecond);

  // The ring converges despite the slow relay (waits, degradations and
  // leader retries all compose).
  for (const MemberId& id : cluster->ids()) {
    EXPECT_EQ(cluster->node(id)->consensus()->last_logged(), last) << id;
  }
}

TEST(ProxyRouterTest, ResponsesRelayUpstreamThroughOwnRegion) {
  // §4.2.1: "the response from the downstream follower will then be
  // proxied back upstream" — a logtailer's response to a remote leader
  // routes via its region's relay; the relay itself responds direct.
  sim::EventLoop loop(2);
  std::vector<Message> sent;
  ProxyOptions options;
  ProxyRouter router("lt1a", "r1", options, &loop,
                     [&](Message m) { sent.push_back(std::move(m)); });

  auto env = NewMemEnv();
  raft::ConsensusMetadataStore meta(env.get(), "/m");
  raft::MemLog log;
  static raft::MajorityQuorumEngine quorum;
  Random rng(3);
  struct NullOutbox : raft::RaftOutbox {
    void Send(Message) override {}
  } null_outbox;
  raft::StateMachineListener listener;
  raft::RaftOptions raft_options;
  raft_options.self = "lt1a";
  raft_options.region = "r1";
  raft::RaftConsensus consensus(raft_options, &log, &quorum, &meta,
                                loop.clock(), &rng, &null_outbox, &listener);
  MembershipConfig config;
  config.members = {
      {"db0", "r0", MemberKind::kMySql, RaftMemberType::kVoter},
      {"db1", "r1", MemberKind::kMySql, RaftMemberType::kVoter},
      {"lt1a", "r1", MemberKind::kLogtailer, RaftMemberType::kVoter},
  };
  ASSERT_TRUE(consensus.Bootstrap(config).ok());
  router.BindConsensus(&consensus);

  AppendEntriesResponse response;
  response.from = "lt1a";
  response.dest = "db0";  // remote leader
  response.term = 1;
  response.success = true;
  router.Send(Message(response));
  ASSERT_EQ(sent.size(), 1u);
  {
    const auto& out = std::get<AppendEntriesResponse>(sent[0]);
    ASSERT_EQ(out.route, std::vector<MemberId>{"db1"});  // region relay
    EXPECT_EQ(MessageNextHop(sent[0]), "db1");
    EXPECT_EQ(MessageDest(sent[0]), "db0");
  }

  // Same-region responses are direct.
  response.dest = "db1";
  router.Send(Message(response));
  ASSERT_EQ(sent.size(), 2u);
  EXPECT_TRUE(std::get<AppendEntriesResponse>(sent[1]).route.empty());

  // The relay (db1's router) would pop itself and forward: simulate the
  // hop on an intermediate router.
  ProxyRouter relay("db1", "r1", options, &loop,
                    [&](Message m) { sent.push_back(std::move(m)); });
  relay.BindConsensus(&consensus);  // config access only
  AppendEntriesResponse routed = response;
  routed.dest = "db0";
  routed.route = {"db1"};
  EXPECT_TRUE(relay.HandleInbound(Message(routed)));
  ASSERT_EQ(sent.size(), 3u);
  {
    const auto& out = std::get<AppendEntriesResponse>(sent[2]);
    EXPECT_TRUE(out.route.empty());
    EXPECT_EQ(out.dest, "db0");
  }
  EXPECT_EQ(relay.stats().relayed_responses, 1u);
}

TEST(ProxyRouterTest, MissingEntryWaitsThenDegradesToHeartbeat) {
  // Deterministic final-hop behaviour: a PROXY_OP referencing an entry the
  // relay does not have waits reconstitute_wait_micros, then degrades to a
  // heartbeat (§4.2.1); if the entry shows up during the wait it is
  // reconstituted instead.
  sim::EventLoop loop(1);
  std::vector<Message> sent;
  ProxyOptions options;
  options.reconstitute_wait_micros = 50'000;
  options.reconstitute_poll_micros = 5'000;
  ProxyRouter router("relay", "r1", options, &loop,
                     [&](Message m) { sent.push_back(std::move(m)); });

  auto env = NewMemEnv();
  raft::ConsensusMetadataStore meta(env.get(), "/m");
  raft::MemLog log;
  static raft::MajorityQuorumEngine quorum;
  Random rng(9);
  struct NullOutbox : raft::RaftOutbox {
    void Send(Message) override {}
  } null_outbox;
  raft::StateMachineListener listener;
  raft::RaftOptions raft_options;
  raft_options.self = "relay";
  raft_options.region = "r1";
  raft::RaftConsensus consensus(raft_options, &log, &quorum, &meta,
                                loop.clock(), &rng, &null_outbox, &listener);
  MembershipConfig config;
  config.members = {
      {"leader", "r0", MemberKind::kMySql, RaftMemberType::kVoter},
      {"relay", "r1", MemberKind::kMySql, RaftMemberType::kVoter},
      {"lt1a", "r1", MemberKind::kLogtailer, RaftMemberType::kVoter},
  };
  ASSERT_TRUE(consensus.Bootstrap(config).ok());
  router.BindConsensus(&consensus);

  const LogEntry real =
      LogEntry::Make({3, 9}, EntryType::kTransaction, std::string(400, 'd'));

  auto make_proxy_op = [&]() {
    AppendEntriesRequest proxied;
    proxied.leader = "leader";
    proxied.dest = "lt1a";
    proxied.route = {"relay"};
    proxied.term = 3;
    proxied.prev = {3, 8};
    proxied.proxy_payload_omitted = true;
    LogEntry stripped = real;
    stripped.payload.clear();
    proxied.entries.push_back(stripped);
    return proxied;
  };

  // Case 1: entry never arrives -> degrade after the wait.
  EXPECT_TRUE(router.HandleInbound(Message(make_proxy_op())));
  loop.RunFor(200'000);
  ASSERT_EQ(sent.size(), 1u);
  {
    const auto& out = std::get<AppendEntriesRequest>(sent[0]);
    EXPECT_TRUE(out.entries.empty());  // heartbeat
    EXPECT_EQ(out.dest, "lt1a");
    EXPECT_FALSE(out.proxy_payload_omitted);
  }
  EXPECT_EQ(router.stats().degraded_to_heartbeat, 1u);

  // Case 2: entry arrives mid-wait -> reconstituted in full.
  sent.clear();
  EXPECT_TRUE(router.HandleInbound(Message(make_proxy_op())));
  loop.Schedule(20'000, [&]() {
    // Simulate the relay's own replication stream catching up. MemLog
    // needs indexes 1..9; only 9 matters for the lookup, but appends are
    // contiguous.
    for (uint64_t i = 1; i <= 8; ++i) {
      ASSERT_TRUE(
          log.Append(LogEntry::Make({3, i}, EntryType::kNoOp, "")).ok());
    }
    ASSERT_TRUE(log.Append(real).ok());
  });
  loop.RunFor(200'000);
  ASSERT_EQ(sent.size(), 1u);
  {
    const auto& out = std::get<AppendEntriesRequest>(sent[0]);
    ASSERT_EQ(out.entries.size(), 1u);
    EXPECT_EQ(out.entries[0], real);
    EXPECT_FALSE(out.proxy_payload_omitted);
  }
  EXPECT_EQ(router.stats().reconstitutions, 1u);
  EXPECT_EQ(router.stats().degraded_to_heartbeat, 1u);  // unchanged
}

}  // namespace
}  // namespace myraft::proxy

// Group-commit fsync coalescing (DESIGN.md §12): concurrent client
// writes arriving inside one scheduling instant share a single log
// fsync, on the leader and on inline-sync followers alike. Asserted
// against the MemEnv's WritableFile::Sync() call counter — the hardware
// truth the raft/binlog metrics must agree with — with the per-write
// inline mode as the contrast baseline.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "flexiraft/flexiraft.h"
#include "server/mysql_server.h"
#include "sim/cluster.h"
#include "util/env.h"

namespace myraft::server {
namespace {

using flexiraft::FlexiRaftQuorumEngine;
using flexiraft::QuorumMode;
using sim::ClusterHarness;
using sim::ClusterOptions;
constexpr uint64_t kSecond = 1'000'000;

const raft::QuorumEngine* FlexiEngine() {
  static FlexiRaftQuorumEngine* engine =
      new FlexiRaftQuorumEngine({QuorumMode::kSingleRegionDynamic});
  return engine;
}

ClusterOptions GroupCommitOptions(uint64_t seed, bool coalesced) {
  ClusterOptions options;
  options.seed = seed;
  options.topology.db_regions = 3;
  options.topology.logtailers_per_db = 2;
  // The contrast baseline: defer hook still installed by the sim node,
  // but the sync stage itself disabled — every Replicate fsyncs inline.
  options.raft.group_commit_sync = coalesced;
  return options;
}

uint64_t SyncCallsOn(ClusterHarness* harness, const MemberId& id) {
  auto* fi = GetCrashFaultInjectionEnv(harness->node(id)->env());
  return fi == nullptr ? 0 : fi->SyncCalls();
}

uint64_t CounterOn(ClusterHarness* harness, const MemberId& id,
                   const std::string& name) {
  const auto* counter = harness->node(id)->metrics()->FindCounter(name);
  return counter == nullptr ? 0 : counter->value();
}

/// Issues `bursts` rounds of `width` concurrent writes (all enqueued at
/// the same virtual instant) and waits each round out. Returns the number
/// of acked writes; EXPECTs that none failed.
int RunBursts(ClusterHarness* harness, int bursts, int width) {
  int acked = 0;
  for (int b = 0; b < bursts; ++b) {
    int outstanding = 0;
    for (int w = 0; w < width; ++w) {
      const std::string key =
          "g" + std::to_string(b) + "_" + std::to_string(w);
      ++outstanding;
      harness->ClientWrite(key, "v",
                           [&outstanding, &acked](
                               const ClusterHarness::ClientWriteResult& r) {
                             --outstanding;
                             EXPECT_TRUE(r.status.ok()) << r.status;
                             if (r.status.ok()) ++acked;
                           });
    }
    const uint64_t deadline = harness->loop()->now() + 10 * kSecond;
    while (outstanding > 0 && harness->loop()->now() < deadline) {
      harness->loop()->RunFor(1'000);
    }
    EXPECT_EQ(outstanding, 0) << "burst " << b << " timed out";
  }
  return acked;
}

TEST(GroupCommitTest, EightConcurrentWritersShareFsyncs) {
  ClusterHarness harness(GroupCommitOptions(17, /*coalesced=*/true),
                         FlexiEngine());
  ASSERT_TRUE(harness.Bootstrap().ok());
  const MemberId primary = harness.WaitForPrimary(30 * kSecond);
  ASSERT_FALSE(primary.empty());
  // Warm-up write so bootstrap/promotion syncs fall outside the window.
  ASSERT_TRUE(harness.SyncWrite("warm", "up").status.ok());

  const uint64_t syncs_before = SyncCallsOn(&harness, primary);
  const int acked = RunBursts(&harness, /*bursts=*/8, /*width=*/8);
  ASSERT_EQ(acked, 64);
  const uint64_t syncs = SyncCallsOn(&harness, primary) - syncs_before;

  // The acceptance bar: well under one fsync per two committed
  // transactions on the leader. Eight writes landing in one instant
  // should share one coalesced sync (plus stray heartbeat-path syncs).
  EXPECT_LT(static_cast<double>(syncs), 0.5 * acked)
      << syncs << " fsyncs for " << acked << " writes";
  // The coalescing actually engaged, and writes genuinely shared syncs.
  EXPECT_GT(CounterOn(&harness, primary, "raft.group_syncs"), 0u);
  EXPECT_GT(CounterOn(&harness, primary, "raft.group_sync_coalesced"), 0u);
  // The binlog's own sync counter tells the same story from the log
  // abstraction's side of the adapter.
  EXPECT_LT(CounterOn(&harness, primary, "binlog.syncs"),
            static_cast<uint64_t>(acked));

  // Inline-sync followers coalesce the same way: the logtailers that ack
  // the commit quorum fsynced far fewer times than the txns they acked.
  for (const MemberId& id : harness.ids()) {
    if (id == primary || harness.node(id)->server()->engine() != nullptr) {
      continue;  // logtailers only: they see the full write stream
    }
    EXPECT_LT(SyncCallsOn(&harness, id), static_cast<uint64_t>(acked)) << id;
  }
  ASSERT_TRUE(harness.CheckReplicaConsistency());
}

TEST(GroupCommitTest, InlineModeFsyncsPerWrite) {
  // Same workload with the sync stage disabled: the leader pays at least
  // one fsync per committed write. This is the per-write regime the
  // coalescing exists to kill — and the proof the test above measures a
  // real effect rather than an artefact of the sim clock.
  ClusterHarness harness(GroupCommitOptions(17, /*coalesced=*/false),
                         FlexiEngine());
  ASSERT_TRUE(harness.Bootstrap().ok());
  const MemberId primary = harness.WaitForPrimary(30 * kSecond);
  ASSERT_FALSE(primary.empty());
  ASSERT_TRUE(harness.SyncWrite("warm", "up").status.ok());

  const uint64_t syncs_before = SyncCallsOn(&harness, primary);
  const int acked = RunBursts(&harness, /*bursts=*/4, /*width=*/8);
  ASSERT_EQ(acked, 32);
  const uint64_t syncs = SyncCallsOn(&harness, primary) - syncs_before;
  EXPECT_GE(syncs, static_cast<uint64_t>(acked));
  EXPECT_EQ(CounterOn(&harness, primary, "raft.group_syncs"), 0u);
}

}  // namespace
}  // namespace myraft::server

#include "util/compression.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace myraft {
namespace {

std::string RoundTrip(const std::string& input) {
  std::string compressed;
  LzCompress(input, &compressed);
  std::string out;
  Status s = LzDecompress(compressed, &out);
  EXPECT_TRUE(s.ok()) << s;
  return out;
}

TEST(CompressionTest, Empty) { EXPECT_EQ(RoundTrip(""), ""); }

TEST(CompressionTest, Tiny) {
  EXPECT_EQ(RoundTrip("a"), "a");
  EXPECT_EQ(RoundTrip("abc"), "abc");
}

TEST(CompressionTest, HighlyRepetitiveShrinks) {
  const std::string input(100000, 'z');
  std::string compressed;
  LzCompress(input, &compressed);
  EXPECT_LT(compressed.size(), input.size() / 50);
  std::string out;
  ASSERT_TRUE(LzDecompress(compressed, &out).ok());
  EXPECT_EQ(out, input);
}

TEST(CompressionTest, OverlappingMatchesRleStyle) {
  // "ababab..." forces overlapping back-references.
  std::string input;
  for (int i = 0; i < 5000; ++i) input += "ab";
  EXPECT_EQ(RoundTrip(input), input);
}

TEST(CompressionTest, BinlogLikePayloadCompresses) {
  // Row-based replication payloads repeat column metadata heavily.
  std::string input;
  Random rng(11);
  for (int row = 0; row < 200; ++row) {
    input += "TABLE_MAP:db1.users|cols=id,name,email,ts|";
    input += "ROW:" + std::to_string(rng.Uniform(100000)) + "|";
  }
  std::string compressed;
  LzCompress(input, &compressed);
  EXPECT_LT(compressed.size(), input.size() / 2);
  std::string out;
  ASSERT_TRUE(LzDecompress(compressed, &out).ok());
  EXPECT_EQ(out, input);
}

TEST(CompressionTest, IncompressibleStillRoundTrips) {
  Random rng(13);
  std::string input;
  for (int i = 0; i < 10000; ++i) input.push_back(static_cast<char>(rng.Next()));
  EXPECT_EQ(RoundTrip(input), input);
  std::string compressed;
  LzCompress(input, &compressed);
  EXPECT_LE(compressed.size(), LzMaxCompressedSize(input.size()));
}

TEST(CompressionTest, DecompressRejectsTruncation) {
  std::string input(1000, 'x');
  input += "variation to force structure";
  std::string compressed;
  LzCompress(input, &compressed);
  for (size_t len : {size_t{0}, compressed.size() / 2, compressed.size() - 1}) {
    std::string out;
    Status s = LzDecompress(Slice(compressed.data(), len), &out);
    EXPECT_FALSE(s.ok()) << "len=" << len;
  }
}

TEST(CompressionTest, DecompressRejectsBadTag) {
  std::string compressed;
  LzCompress("hello world hello world", &compressed);
  // Corrupt the first command tag after the size varint.
  compressed[1] = 0x7F;
  std::string out;
  EXPECT_TRUE(LzDecompress(compressed, &out).IsCorruption());
}

TEST(CompressionTest, DecompressRejectsBogusDistance) {
  // Hand-craft: size=4, match len=4 dist=9 with empty window.
  std::string bad;
  bad.push_back(4);    // varint size = 4
  bad.push_back(1);    // match tag
  bad.push_back(4);    // len
  bad.push_back(9);    // dist > window
  std::string out;
  EXPECT_TRUE(LzDecompress(bad, &out).IsCorruption());
}

class CompressionFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CompressionFuzzTest, RandomStructuredRoundTrip) {
  Random rng(GetParam());
  // Mix of random bytes and repeated phrases, like real txn payloads.
  std::string input;
  const char* phrases[] = {"INSERT", "UPDATE users SET ", "gtid:", "xid=",
                           "aaaaaaaaaaaaaaaa"};
  const size_t target = 1000 + rng.Uniform(50000);
  while (input.size() < target) {
    if (rng.OneIn(3)) {
      input += phrases[rng.Uniform(5)];
    } else {
      const size_t n = 1 + rng.Uniform(20);
      for (size_t i = 0; i < n; ++i) input.push_back(static_cast<char>(rng.Next()));
    }
  }
  std::string compressed, out;
  LzCompress(input, &compressed);
  ASSERT_TRUE(LzDecompress(compressed, &out).ok());
  EXPECT_EQ(out, input);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressionFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace myraft

// Cluster-level Raft tests on the deterministic simulator: elections,
// replication, failover, graceful transfer with mock elections, witness
// behaviour, membership changes, log-cache fallback and the Quorum Fixer
// override.

#include <gtest/gtest.h>

#include "raft_test_harness.h"

namespace myraft::raft_test {
namespace {

constexpr uint64_t kSecond = 1'000'000;

MajorityQuorumEngine* Majority() {
  static MajorityQuorumEngine* engine = new MajorityQuorumEngine();
  return engine;
}

RaftOptions FastOptions() {
  RaftOptions options;
  options.heartbeat_interval_micros = 500'000;
  options.missed_heartbeats_before_election = 3;
  options.election_jitter_micros = 300'000;
  return options;
}

class ThreeNodeClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<RaftTestCluster>(1234);
    cluster_->AddMemberSpec("a", "r0");
    cluster_->AddMemberSpec("b", "r0");
    cluster_->AddMemberSpec("c", "r0");
    cluster_->StartAll(Majority(), FastOptions());
  }

  std::unique_ptr<RaftTestCluster> cluster_;
};

TEST_F(ThreeNodeClusterTest, ElectsLeaderAndCommitsNoOp) {
  const MemberId leader = cluster_->WaitForLeader(5 * kSecond);
  ASSERT_FALSE(leader.empty());
  RaftConsensus* consensus = cluster_->node(leader)->consensus();
  // The leadership no-op must commit.
  ASSERT_TRUE(cluster_->WaitForCommit(leader, consensus->last_logged(),
                                      2 * kSecond));
  EXPECT_EQ(cluster_->node(leader)->leadership_acquired_, 1);
  EXPECT_GE(consensus->term(), 1u);
}

TEST_F(ThreeNodeClusterTest, ReplicatesToAllAndAdvancesCommit) {
  const MemberId leader_id = cluster_->WaitForLeader(5 * kSecond);
  ASSERT_FALSE(leader_id.empty());
  RaftConsensus* leader = cluster_->node(leader_id)->consensus();

  OpId last;
  for (int i = 0; i < 20; ++i) {
    auto opid = leader->Replicate(EntryType::kNoOp,
                                  "payload-" + std::to_string(i));
    ASSERT_TRUE(opid.ok()) << opid.status();
    last = *opid;
  }
  ASSERT_TRUE(cluster_->WaitForCommit(leader_id, last, 2 * kSecond));

  // All members converge to identical logs and commit markers.
  cluster_->loop()->RunFor(2 * kSecond);
  for (const MemberId& id : cluster_->ids()) {
    RaftConsensus* consensus = cluster_->node(id)->consensus();
    EXPECT_EQ(consensus->last_logged(), last) << id;
    EXPECT_EQ(consensus->commit_marker(), last) << id;
    auto entry = consensus->log()->Read(last.index);
    ASSERT_TRUE(entry.ok()) << id;
    EXPECT_EQ(entry->payload, "payload-19");
  }
  // Followers were notified of appends.
  for (const MemberId& id : cluster_->ids()) {
    EXPECT_GT(cluster_->node(id)->entries_appended_, 0) << id;
  }
}

TEST_F(ThreeNodeClusterTest, ReplicateRejectedOnFollower) {
  const MemberId leader = cluster_->WaitForLeader(5 * kSecond);
  ASSERT_FALSE(leader.empty());
  for (const MemberId& id : cluster_->ids()) {
    if (id == leader) continue;
    auto result =
        cluster_->node(id)->consensus()->Replicate(EntryType::kNoOp, "x");
    EXPECT_FALSE(result.ok());
  }
}

TEST_F(ThreeNodeClusterTest, FailoverAfterLeaderCrash) {
  const MemberId old_leader = cluster_->WaitForLeader(5 * kSecond);
  ASSERT_FALSE(old_leader.empty());
  auto opid = cluster_->node(old_leader)
                  ->consensus()
                  ->Replicate(EntryType::kNoOp, "before-crash");
  ASSERT_TRUE(opid.ok());
  ASSERT_TRUE(cluster_->WaitForCommit(old_leader, *opid, 2 * kSecond));

  const uint64_t crash_time = cluster_->loop()->now();
  cluster_->Crash(old_leader);
  const MemberId new_leader = cluster_->WaitForLeader(10 * kSecond);
  ASSERT_FALSE(new_leader.empty());
  ASSERT_NE(new_leader, old_leader);

  // Detection takes ~3 missed 500 ms heartbeats plus election time (§6.2:
  // ~2 s average in production).
  const uint64_t failover_micros = cluster_->loop()->now() - crash_time;
  EXPECT_GT(failover_micros, 1'000'000u);
  EXPECT_LT(failover_micros, 8'000'000u);

  // Committed entry survives (leader completeness).
  auto entry = cluster_->node(new_leader)->consensus()->log()->Read(
      opid->index);
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->payload, "before-crash");
}

TEST_F(ThreeNodeClusterTest, ErstwhileLeaderRejoinsAndTruncates) {
  const MemberId old_leader = cluster_->WaitForLeader(5 * kSecond);
  ASSERT_FALSE(old_leader.empty());
  RaftConsensus* old = cluster_->node(old_leader)->consensus();
  auto committed = old->Replicate(EntryType::kNoOp, "durable");
  ASSERT_TRUE(committed.ok());
  ASSERT_TRUE(cluster_->WaitForCommit(old_leader, *committed, 2 * kSecond));

  // Isolate the leader, write entries that never reach anyone (§A.2 case
  // 2), then crash it.
  for (const MemberId& id : cluster_->ids()) {
    if (id != old_leader) {
      cluster_->network()->SetLinkCut(old_leader, id, true);
    }
  }
  auto lost1 = old->Replicate(EntryType::kNoOp, "lost-1");
  auto lost2 = old->Replicate(EntryType::kNoOp, "lost-2");
  ASSERT_TRUE(lost1.ok());
  ASSERT_TRUE(lost2.ok());
  cluster_->Crash(old_leader);
  for (const MemberId& id : cluster_->ids()) {
    if (id != old_leader) {
      cluster_->network()->SetLinkCut(old_leader, id, false);
    }
  }

  const MemberId new_leader = cluster_->WaitForLeader(10 * kSecond);
  ASSERT_FALSE(new_leader.empty());
  ASSERT_NE(new_leader, old_leader);
  auto replacement = cluster_->node(new_leader)
                         ->consensus()
                         ->Replicate(EntryType::kNoOp, "new-era");
  ASSERT_TRUE(replacement.ok());
  ASSERT_TRUE(cluster_->WaitForCommit(new_leader, *replacement, 2 * kSecond));

  // The erstwhile leader restarts, rejoins as follower, and its divergent
  // suffix is truncated and replaced.
  cluster_->Restart(old_leader);
  cluster_->loop()->RunFor(4 * kSecond);
  RaftConsensus* rejoined = cluster_->node(old_leader)->consensus();
  EXPECT_EQ(rejoined->role(), RaftRole::kFollower);
  EXPECT_EQ(rejoined->leader(), new_leader);
  EXPECT_GT(cluster_->node(old_leader)->truncations_, 0);
  auto entry = rejoined->log()->Read(lost1->index);
  ASSERT_TRUE(entry.ok());
  EXPECT_NE(entry->payload, "lost-1");
  EXPECT_EQ(rejoined->last_logged(),
            cluster_->node(new_leader)->consensus()->last_logged());
}

TEST_F(ThreeNodeClusterTest, GracefulTransferLeadership) {
  const MemberId old_leader = cluster_->WaitForLeader(5 * kSecond);
  ASSERT_FALSE(old_leader.empty());
  RaftConsensus* old = cluster_->node(old_leader)->consensus();
  ASSERT_TRUE(
      cluster_->WaitForCommit(old_leader, old->last_logged(), 2 * kSecond));

  MemberId target;
  for (const MemberId& id : cluster_->ids()) {
    if (id != old_leader) {
      target = id;
      break;
    }
  }
  const uint64_t old_term = old->term();
  ASSERT_TRUE(old->TransferLeadership(target).ok());
  // A second transfer while one is pending is rejected.
  EXPECT_FALSE(old->TransferLeadership(target).ok());

  cluster_->loop()->RunFor(3 * kSecond);
  RaftConsensus* new_leader = cluster_->node(target)->consensus();
  EXPECT_EQ(new_leader->role(), RaftRole::kLeader);
  EXPECT_EQ(new_leader->term(), old_term + 1);
  EXPECT_EQ(old->role(), RaftRole::kFollower);
  EXPECT_EQ(cluster_->node(old_leader)->leadership_lost_, 1);
  // Mock election ran before the transfer (§4.3).
  EXPECT_GT(new_leader->stats().mock_elections_started, 0u);
}

TEST(RaftClusterTest, MockElectionFailureAbortsTransferWithoutDowntime) {
  RaftTestCluster cluster(99);
  for (const char* id : {"a", "b", "c", "d", "e"}) {
    cluster.AddMemberSpec(id, "r0");
  }
  cluster.StartAll(Majority(), FastOptions());
  const MemberId leader_id = cluster.WaitForLeader(5 * kSecond);
  ASSERT_FALSE(leader_id.empty());
  RaftConsensus* leader = cluster.node(leader_id)->consensus();
  ASSERT_TRUE(
      cluster.WaitForCommit(leader_id, leader->last_logged(), 2 * kSecond));

  // Choose a target, then lag every other follower far behind by cutting
  // their links and writing more entries.
  MemberId target;
  std::vector<MemberId> laggards;
  for (const MemberId& id : cluster.ids()) {
    if (id == leader_id) continue;
    if (target.empty()) {
      target = id;
    } else {
      laggards.push_back(id);
    }
  }
  for (const MemberId& id : laggards) {
    cluster.network()->SetLinkCut(leader_id, id, true);
    cluster.network()->SetLinkCut(target, id, true);
  }
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(leader->Replicate(EntryType::kNoOp, "ahead").ok());
  }
  cluster.loop()->RunFor(1 * kSecond);

  // Mock election: target + leader grant (caught up), three laggards
  // cannot even be reached => quorum of 3/5 unreachable... but wait: the
  // leader and target both grant, links to laggards are cut so no
  // response arrives; the round times out and the transfer fails. Writes
  // were never disallowed.
  ASSERT_TRUE(leader->TransferLeadership(target).ok());
  EXPECT_FALSE(leader->is_quiesced_for_transfer());
  ASSERT_TRUE(leader->Replicate(EntryType::kNoOp, "still-writable").ok());

  cluster.loop()->RunFor(6 * kSecond);
  EXPECT_EQ(leader->role(), RaftRole::kLeader);
  EXPECT_FALSE(leader->transfer_target().has_value());
  EXPECT_GE(cluster.node(leader_id)->transfer_failures_, 1);
  ASSERT_TRUE(leader->Replicate(EntryType::kNoOp, "after-abort").ok());
}

TEST(RaftClusterTest, WitnessWinsThenHandsOffToDatabase) {
  // Leader + witness get ahead of the other mysql voter; on leader crash
  // the witness has the longest log, wins, then transfers to the mysql
  // member once it catches up (§2.2, §4.1).
  RaftTestCluster cluster(555);
  cluster.AddMemberSpec("db0", "r0", MemberKind::kMySql);
  cluster.AddMemberSpec("db1", "r0", MemberKind::kMySql);
  cluster.AddMemberSpec("witness", "r0", MemberKind::kLogtailer);
  cluster.StartAll(Majority(), FastOptions());

  const MemberId leader_id = cluster.WaitForLeader(5 * kSecond);
  ASSERT_FALSE(leader_id.empty());
  // Force a mysql leader for the scenario.
  if (leader_id == "witness") {
    cluster.loop()->RunFor(5 * kSecond);  // witness auto-transfers
  }
  const MemberId db_leader = cluster.CurrentLeader();
  ASSERT_TRUE(db_leader == "db0" || db_leader == "db1");
  const MemberId other_db = db_leader == "db0" ? "db1" : "db0";
  RaftConsensus* leader = cluster.node(db_leader)->consensus();

  // Lag the other database replica.
  cluster.network()->SetLinkCut(db_leader, other_db, true);
  OpId last;
  for (int i = 0; i < 10; ++i) {
    auto opid = leader->Replicate(EntryType::kNoOp, "w" + std::to_string(i));
    ASSERT_TRUE(opid.ok());
    last = *opid;
  }
  ASSERT_TRUE(cluster.WaitForCommit(db_leader, last, 2 * kSecond));

  cluster.Crash(db_leader);
  cluster.network()->SetLinkCut(db_leader, other_db, false);

  // The witness must win first (longest log), then hand off to the db.
  cluster.loop()->RunFor(15 * kSecond);
  const MemberId final_leader = cluster.CurrentLeader();
  EXPECT_EQ(final_leader, other_db);
  EXPECT_GT(cluster.node("witness")->leadership_acquired_, 0);
  EXPECT_GT(cluster.node("witness")->leadership_lost_, 0);
  // Committed entries survived the double hop.
  auto entry =
      cluster.node(other_db)->consensus()->log()->Read(last.index);
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->payload, "w9");
}

TEST_F(ThreeNodeClusterTest, MembershipChangeAddsAndRemoves) {
  const MemberId leader_id = cluster_->WaitForLeader(5 * kSecond);
  ASSERT_FALSE(leader_id.empty());
  RaftConsensus* leader = cluster_->node(leader_id)->consensus();
  ASSERT_TRUE(
      cluster_->WaitForCommit(leader_id, leader->last_logged(), 2 * kSecond));

  // AddMember is initiated by automation (§2.2); the harness has no
  // transport entry for a brand-new node, so add a learner spec that
  // points at an existing region and verify config propagation.
  MemberInfo learner{"learner-x", "r0", MemberKind::kMySql,
                     RaftMemberType::kNonVoter};
  ASSERT_TRUE(leader->AddMember(learner).ok());
  // Second change while the first is uncommitted is refused.
  Status second = leader->AddMember(
      MemberInfo{"learner-y", "r0", MemberKind::kMySql,
                 RaftMemberType::kNonVoter});
  EXPECT_FALSE(second.ok());

  ASSERT_TRUE(cluster_->WaitForCommit(leader_id, leader->last_logged(),
                                      2 * kSecond));
  EXPECT_FALSE(leader->has_pending_config_change());
  cluster_->loop()->RunFor(2 * kSecond);
  for (const MemberId& id : cluster_->ids()) {
    EXPECT_TRUE(
        cluster_->node(id)->consensus()->config().Contains("learner-x"))
        << id;
  }

  // Remove it again.
  ASSERT_TRUE(leader->RemoveMember("learner-x").ok());
  ASSERT_TRUE(cluster_->WaitForCommit(leader_id, leader->last_logged(),
                                      2 * kSecond));
  cluster_->loop()->RunFor(2 * kSecond);
  for (const MemberId& id : cluster_->ids()) {
    EXPECT_FALSE(
        cluster_->node(id)->consensus()->config().Contains("learner-x"))
        << id;
  }
  EXPECT_FALSE(leader->RemoveMember(leader_id).ok());  // self-removal
  EXPECT_FALSE(leader->RemoveMember("ghost").ok());
}

TEST(RaftClusterTest, QuorumFixerOverrideRestoresAvailability) {
  RaftTestCluster cluster(777);
  for (const char* id : {"a", "b", "c", "d", "e"}) {
    cluster.AddMemberSpec(id, "r0");
  }
  cluster.StartAll(Majority(), FastOptions());
  const MemberId leader_id = cluster.WaitForLeader(5 * kSecond);
  ASSERT_FALSE(leader_id.empty());
  auto opid = cluster.node(leader_id)
                  ->consensus()
                  ->Replicate(EntryType::kNoOp, "precious");
  ASSERT_TRUE(opid.ok());
  ASSERT_TRUE(cluster.WaitForCommit(leader_id, *opid, 2 * kSecond));
  cluster.loop()->RunFor(1 * kSecond);

  // Shattered quorum: 3 of 5 voters die, including the leader.
  std::vector<MemberId> victims{leader_id};
  for (const MemberId& id : cluster.ids()) {
    if (victims.size() >= 3) break;
    if (id != leader_id) victims.push_back(id);
  }
  for (const MemberId& id : victims) cluster.Crash(id);

  // No leader can emerge.
  EXPECT_EQ(cluster.WaitForLeader(8 * kSecond), "");

  // Quorum Fixer: pick the longest-log survivor and override the election
  // quorum (§5.3).
  MemberId survivor;
  OpId longest;
  for (const MemberId& id : cluster.ids()) {
    TestNode* node = cluster.node(id);
    if (!node->up_) continue;
    if (survivor.empty() ||
        node->consensus()->last_logged().IsLaterThan(longest)) {
      survivor = id;
      longest = node->consensus()->last_logged();
    }
  }
  ASSERT_FALSE(survivor.empty());
  RaftConsensus* chosen = cluster.node(survivor)->consensus();
  chosen->SetElectionVotesOverride(2);  // self + one other survivor
  ASSERT_TRUE(chosen->StartElection(ElectionMode::kRealElection).ok());
  cluster.loop()->RunFor(2 * kSecond);
  EXPECT_EQ(chosen->role(), RaftRole::kLeader);
  chosen->SetElectionVotesOverride(std::nullopt);

  // The committed entry survived the disaster.
  auto entry = chosen->log()->Read(opid->index);
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->payload, "precious");
}

TEST(RaftClusterTest, LaggingFollowerServedFromDiskFallback) {
  RaftTestCluster cluster(31);
  cluster.AddMemberSpec("a", "r0");
  cluster.AddMemberSpec("b", "r0");
  cluster.AddMemberSpec("c", "r0");
  RaftOptions options = FastOptions();
  options.log_cache_capacity_bytes = 4'000;  // tiny cache
  cluster.StartAll(Majority(), options);

  const MemberId leader_id = cluster.WaitForLeader(5 * kSecond);
  ASSERT_FALSE(leader_id.empty());
  RaftConsensus* leader = cluster.node(leader_id)->consensus();

  MemberId laggard;
  for (const MemberId& id : cluster.ids()) {
    if (id != leader_id) {
      laggard = id;
      break;
    }
  }
  cluster.network()->SetLinkCut(leader_id, laggard, true);

  // Push incompressible entries well past the cache capacity.
  Random payload_rng(5);
  OpId last;
  for (int i = 0; i < 50; ++i) {
    std::string payload(400, '\0');
    for (char& ch : payload) ch = static_cast<char>(payload_rng.Next());
    auto opid = leader->Replicate(EntryType::kNoOp, payload);
    ASSERT_TRUE(opid.ok());
    last = *opid;
  }
  ASSERT_TRUE(cluster.WaitForCommit(leader_id, last, 3 * kSecond));
  EXPECT_GT(leader->log_cache().stats().evictions, 0u);

  // Reconnect: the laggard must be served from the log abstraction (the
  // "parse historical binary log files" path, §3.1).
  cluster.network()->SetLinkCut(leader_id, laggard, false);
  cluster.loop()->RunFor(5 * kSecond);
  EXPECT_EQ(cluster.node(laggard)->consensus()->last_logged(), last);
  EXPECT_GT(leader->stats().cache_fallback_reads, 0u);
}

TEST(RaftClusterTest, LearnerReceivesDataButNeverVotesOrCampaigns) {
  RaftTestCluster cluster(41);
  cluster.AddMemberSpec("a", "r0");
  cluster.AddMemberSpec("b", "r0");
  cluster.AddMemberSpec("c", "r0");
  cluster.AddMemberSpec("learner", "r1", MemberKind::kMySql,
                        RaftMemberType::kNonVoter);
  cluster.StartAll(Majority(), FastOptions());

  const MemberId leader_id = cluster.WaitForLeader(5 * kSecond);
  ASSERT_FALSE(leader_id.empty());
  ASSERT_NE(leader_id, "learner");
  RaftConsensus* leader = cluster.node(leader_id)->consensus();
  auto opid = leader->Replicate(EntryType::kNoOp, "to-learner");
  ASSERT_TRUE(opid.ok());
  cluster.loop()->RunFor(2 * kSecond);

  RaftConsensus* learner = cluster.node("learner")->consensus();
  EXPECT_EQ(learner->role(), RaftRole::kLearner);
  EXPECT_EQ(learner->last_logged(), *opid);
  EXPECT_FALSE(learner->StartElection(ElectionMode::kRealElection).ok());

  // Crash everything but the learner: it must never claim leadership.
  for (const char* id : {"a", "b", "c"}) cluster.Crash(id);
  cluster.loop()->RunFor(10 * kSecond);
  EXPECT_NE(learner->role(), RaftRole::kLeader);
  EXPECT_EQ(learner->stats().elections_started, 0u);
}

TEST(RaftClusterTest, NoSplitBrainUnderPartitions) {
  // Safety sweep: random partitions and heals; at every step at most one
  // leader per term, and committed entries are never lost.
  for (uint64_t seed : {7u, 21u, 63u}) {
    RaftTestCluster cluster(seed);
    for (const char* id : {"a", "b", "c", "d", "e"}) {
      cluster.AddMemberSpec(id, "r0");
    }
    cluster.StartAll(Majority(), FastOptions());
    Random rng(seed * 13);

    std::map<uint64_t, std::string> committed;  // index -> payload
    int counter = 0;
    for (int round = 0; round < 20; ++round) {
      // Random partition event.
      const auto ids = cluster.ids();
      const MemberId a = ids[rng.Uniform(ids.size())];
      const MemberId b = ids[rng.Uniform(ids.size())];
      if (a != b) cluster.network()->SetLinkCut(a, b, rng.OneIn(2));

      cluster.loop()->RunFor(2 * kSecond);

      // Try writing on the current leader.
      const MemberId leader_id = cluster.CurrentLeader();
      if (!leader_id.empty()) {
        RaftConsensus* leader = cluster.node(leader_id)->consensus();
        const std::string payload = "c" + std::to_string(counter++);
        auto opid = leader->Replicate(EntryType::kNoOp, payload);
        if (opid.ok() && cluster.WaitForCommit(leader_id, *opid, kSecond)) {
          committed[opid->index] = payload;
        }
      }

      // Invariant: at most one leader per term among up nodes.
      std::map<uint64_t, int> leaders_per_term;
      for (const MemberId& id : cluster.ids()) {
        RaftConsensus* consensus = cluster.node(id)->consensus();
        if (consensus->role() == RaftRole::kLeader) {
          ++leaders_per_term[consensus->term()];
        }
      }
      for (const auto& [term, count] : leaders_per_term) {
        ASSERT_LE(count, 1) << "split brain in term " << term;
      }
    }

    // Heal everything and converge.
    for (const MemberId& a : cluster.ids()) {
      for (const MemberId& b : cluster.ids()) {
        if (a < b) cluster.network()->SetLinkCut(a, b, false);
      }
    }
    const MemberId final_leader = cluster.WaitForLeader(15 * kSecond);
    ASSERT_FALSE(final_leader.empty()) << "seed " << seed;
    cluster.loop()->RunFor(5 * kSecond);

    // Every committed entry is present with the same payload everywhere.
    for (const MemberId& id : cluster.ids()) {
      RaftConsensus* consensus = cluster.node(id)->consensus();
      for (const auto& [index, payload] : committed) {
        auto entry = consensus->log()->Read(index);
        ASSERT_TRUE(entry.ok()) << id << " lost index " << index;
        ASSERT_EQ(entry->payload, payload)
            << id << " diverged at " << index << " (seed " << seed << ")";
      }
    }
  }
}

}  // namespace
}  // namespace myraft::raft_test

// Observability-plane tests (DESIGN.md §14): sampler windowing and series
// export, flight-recorder triggers/cooldown/bundle shape, health-detector
// scoring and outage windows, the raftstat DebugStatus surface, and the
// cross-checks the plane is built around — the HealthMonitor's outage
// measurement must agree with DowntimeProbe's client-side view of the
// same failover, chaos bundles must be byte-identical for the same seed,
// and every registered metric must appear in the static catalog.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "chaos/nemesis.h"
#include "chaos/runner.h"
#include "flexiraft/flexiraft.h"
#include "obs/catalog.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/time_series.h"
#include "sim/cluster.h"
#include "util/clock.h"
#include "util/metrics.h"

namespace myraft::obs {
namespace {

constexpr uint64_t kSecond = 1'000'000;

const raft::QuorumEngine* FlexiEngine() {
  static auto* engine = new flexiraft::FlexiRaftQuorumEngine(
      {flexiraft::QuorumMode::kSingleRegionDynamic});
  return engine;
}

// --- TimeSeriesSampler -------------------------------------------------------

TEST(TimeSeriesSamplerTest, WindowsCarryPerTickDeltas) {
  ManualClock clock;
  metrics::MetricRegistry registry;
  metrics::Counter* writes = registry.GetCounter("raft.writes");

  TimeSeriesOptions options;
  options.clock = &clock;
  options.interval_micros = 1'000;
  TimeSeriesSampler sampler(options);
  sampler.AddSource("db0", &registry);

  // First sight of a source: the window is its full accumulated state, so
  // pre-sampling activity is not lost.
  writes->Increment(5);
  sampler.Sample();
  ASSERT_EQ(sampler.window_count(), 1u);
  const metrics::MetricSnapshot* w = sampler.LastWindow("db0");
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->counters.at("raft.writes"), 5u);

  // Subsequent windows are deltas, not totals.
  clock.AdvanceMicros(1'000);
  writes->Increment(3);
  sampler.Sample();
  EXPECT_EQ(sampler.LastWindow("db0")->counters.at("raft.writes"), 3u);

  // An idle window deltas to zero.
  clock.AdvanceMicros(1'000);
  sampler.Sample();
  EXPECT_EQ(sampler.LastWindow("db0")->counters.at("raft.writes"), 0u);
  EXPECT_EQ(sampler.LastWindow("missing"), nullptr);
}

TEST(TimeSeriesSamplerTest, RingDropsOldestWindows) {
  ManualClock clock;
  metrics::MetricRegistry registry;
  TimeSeriesOptions options;
  options.clock = &clock;
  options.capacity = 3;
  TimeSeriesSampler sampler(options);
  sampler.AddSource("n", &registry);
  for (int i = 0; i < 5; ++i) {
    sampler.Sample();
    clock.AdvanceMicros(1'000);
  }
  EXPECT_EQ(sampler.window_count(), 3u);
  EXPECT_EQ(sampler.windows_dropped(), 2u);
  // The retained windows are the newest ones.
  EXPECT_EQ(sampler.windows().front().ts_micros, 2'000u);
  EXPECT_EQ(sampler.windows().back().ts_micros, 4'000u);
}

TEST(TimeSeriesSamplerTest, SeriesJsonIsDeterministicAndDense) {
  auto run = []() {
    ManualClock clock;
    metrics::MetricRegistry a;
    metrics::MetricRegistry b;
    TimeSeriesOptions options;
    options.clock = &clock;
    TimeSeriesSampler sampler(options);
    sampler.AddSource("db0", &a);
    sampler.AddSource("net", &b);
    for (int tick = 0; tick < 4; ++tick) {
      if (tick == 1) a.GetCounter("c")->Increment(7);
      if (tick == 2) a.GetGauge("g")->Set(-4);
      if (tick == 2) b.GetHistogram("h")->Record(100);
      sampler.Sample();
      clock.AdvanceMicros(5'000);
    }
    return sampler.SeriesJson();
  };
  const std::string json = run();
  EXPECT_EQ(json, run());  // byte-identical for identical runs
  EXPECT_NE(json.find("\"windows\":4"), std::string::npos);
  // Counter delta lands in its window, zero elsewhere (dense arrays).
  EXPECT_NE(json.find("\"db0.c\":[0,7,0,0]"), std::string::npos);
  // Gauges export their level at each tick; the level persists.
  EXPECT_NE(json.find("\"db0.g\":[0,0,-4,-4]"), std::string::npos);
  // Histograms export a window count and a window p99.
  EXPECT_NE(json.find("\"net.h.count\":[0,0,1,0]"), std::string::npos);
  EXPECT_NE(json.find("\"net.h.p99\""), std::string::npos);
}

// --- FlightRecorder ----------------------------------------------------------

TEST(FlightRecorderTest, BundleHasAllSectionsAndCooldownSuppresses) {
  ManualClock clock;
  FlightRecorderOptions options;
  options.clock = &clock;
  options.cooldown_micros = 10'000;
  FlightRecorder recorder(options);
  EXPECT_EQ(recorder.LastBundleJson(), "");

  recorder.SetRaftstatProvider([]() { return std::string("{\"r\":1}"); });
  recorder.SetTraceTailProvider([]() { return std::string("[\"t\"]"); });
  recorder.SetMetricsSeriesProvider([]() { return std::string("{\"s\":2}"); });

  ASSERT_TRUE(recorder.Trigger(TriggerKind::kManual, "first \"failure\""));
  const std::string bundle = recorder.LastBundleJson();
  EXPECT_NE(bundle.find("\"kind\":\"manual\""), std::string::npos);
  EXPECT_NE(bundle.find("first \\\"failure\\\""), std::string::npos);
  EXPECT_NE(bundle.find("\"raftstat\":{\"r\":1}"), std::string::npos);
  EXPECT_NE(bundle.find("\"trace_tail\":[\"t\"]"), std::string::npos);
  EXPECT_NE(bundle.find("\"metrics_series\":{\"s\":2}"), std::string::npos);

  // Same kind within the cooldown: counted, not captured — the
  // first-failure bundle survives its own aftershocks.
  clock.AdvanceMicros(5'000);
  EXPECT_FALSE(recorder.Trigger(TriggerKind::kManual, "aftershock"));
  EXPECT_EQ(recorder.captured(), 1u);
  EXPECT_EQ(recorder.suppressed(), 1u);
  // A different kind is on its own cooldown track.
  EXPECT_TRUE(recorder.Trigger(TriggerKind::kCrashInjection, "crash db0"));
  // Past the cooldown the original kind captures again.
  clock.AdvanceMicros(10'000);
  EXPECT_TRUE(recorder.Trigger(TriggerKind::kManual, "later"));
  EXPECT_EQ(recorder.captured(), 3u);
}

TEST(FlightRecorderTest, UnsetProvidersSerialiseAsNullAndRingBounds) {
  ManualClock clock;
  FlightRecorderOptions options;
  options.clock = &clock;
  options.max_bundles = 2;
  options.cooldown_micros = 0;  // capture everything
  FlightRecorder recorder(options);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(recorder.Trigger(TriggerKind::kManual, std::to_string(i)));
  }
  EXPECT_EQ(recorder.bundles().size(), 2u);
  EXPECT_NE(recorder.LastBundleJson().find("\"detail\":\"4\""),
            std::string::npos);
  EXPECT_NE(recorder.LastBundleJson().find("\"raftstat\":null"),
            std::string::npos);
}

// --- HealthMonitor -----------------------------------------------------------

HealthInputs HealthyLeader(const std::string& id) {
  HealthInputs in;
  in.node = id;
  in.up = true;
  in.is_leader = true;
  in.writes_enabled = true;
  in.lease_renewals_delta = 1;
  return in;
}

HealthInputs HealthyFollower(const std::string& id) {
  HealthInputs in;
  in.node = id;
  in.up = true;
  return in;
}

TEST(HealthMonitorTest, DetectorScoresDegradeIndependently) {
  ManualClock clock;
  HealthOptions options;
  options.clock = &clock;
  HealthMonitor monitor(options);

  HealthInputs leader = HealthyLeader("db0");
  HealthInputs lagger = HealthyFollower("db1");
  lagger.replication_lag_entries = options.lag_floor_entries;  // bottoms out
  monitor.Observe({leader, lagger});

  EXPECT_DOUBLE_EQ(monitor.NodeScore("db0"), 1.0);
  // Node score is the minimum across detectors: the saturated lag
  // detector drags db1 to 0 even though every other detector is clean.
  EXPECT_DOUBLE_EQ(monitor.NodeScore("db1"), 0.0);
  EXPECT_DOUBLE_EQ(monitor.node_health().at("db1").availability, 1.0);
  EXPECT_DOUBLE_EQ(monitor.node_health().at("db1").lag, 0.0);
  // Half the floor scores half.
  lagger.replication_lag_entries = options.lag_floor_entries / 2;
  monitor.Observe({leader, lagger});
  EXPECT_NEAR(monitor.NodeScore("db1"), 0.5, 1e-9);
  // The roll-up only needs a writable healthy leader.
  EXPECT_TRUE(monitor.ClusterHealthy());
  // A node never observed scores 0.
  EXPECT_DOUBLE_EQ(monitor.NodeScore("ghost"), 0.0);
}

TEST(HealthMonitorTest, OutageWindowsTrackLeaderlessTicks) {
  ManualClock clock;
  HealthOptions options;
  options.clock = &clock;
  HealthMonitor monitor(options);

  std::vector<std::pair<bool, uint64_t>> transitions;
  monitor.SetTransitionCallback([&](bool healthy, uint64_t ts) {
    transitions.push_back({healthy, ts});
  });

  monitor.Observe({HealthyLeader("db0"), HealthyFollower("db1")});
  EXPECT_TRUE(monitor.ClusterHealthy());
  EXPECT_TRUE(monitor.outages().empty());

  // Leader down, no successor yet: ticks at 10/20/30 ms are an outage.
  HealthInputs down;
  down.node = "db0";
  for (int tick = 0; tick < 3; ++tick) {
    clock.AdvanceMicros(10'000);
    monitor.Observe({down, HealthyFollower("db1")});
    EXPECT_FALSE(monitor.ClusterHealthy());
  }
  ASSERT_EQ(monitor.outages().size(), 1u);
  EXPECT_TRUE(monitor.outages()[0].open);

  // db1 promoted: the outage closes at the last unhealthy tick.
  clock.AdvanceMicros(10'000);
  monitor.Observe({down, HealthyLeader("db1")});
  EXPECT_TRUE(monitor.ClusterHealthy());
  ASSERT_EQ(monitor.outages().size(), 1u);
  EXPECT_FALSE(monitor.outages()[0].open);
  EXPECT_EQ(monitor.outages()[0].start_micros, 10'000u);
  EXPECT_EQ(monitor.outages()[0].end_micros, 30'000u);
  EXPECT_EQ(monitor.LongestOutageMicros(), 20'000u);
  // Exactly one unhealthy and one healthy transition, in order.
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_FALSE(transitions[0].first);
  EXPECT_EQ(transitions[0].second, 10'000u);
  EXPECT_TRUE(transitions[1].first);
  EXPECT_EQ(transitions[1].second, 40'000u);
}

// --- Metric catalog ----------------------------------------------------------

TEST(MetricCatalogTest, SortedLookupAndMarkdown) {
  const auto& catalog = MetricCatalog();
  ASSERT_FALSE(catalog.empty());
  for (size_t i = 1; i < catalog.size(); ++i) {
    EXPECT_LT(std::string(catalog[i - 1].name), catalog[i].name);
  }
  const MetricInfo* info = FindMetricInfo("raft.pipeline_stalls");
  ASSERT_NE(info, nullptr);
  EXPECT_STREQ(info->kind, "counter");
  EXPECT_STREQ(info->layer, "raft");
  EXPECT_EQ(FindMetricInfo("no.such_metric"), nullptr);
  const std::string markdown = MetricCatalogMarkdown();
  EXPECT_NE(markdown.find("| `raft.pipeline_stalls` |"), std::string::npos);
}

// --- Full-cluster integration ------------------------------------------------

sim::ClusterOptions ObsClusterOptions(uint64_t seed) {
  sim::ClusterOptions options;
  options.seed = seed;
  options.topology.db_regions = 3;
  options.topology.logtailers_per_db = 2;
  options.topology.learners = 1;
  options.obs.sample_interval_micros = 10'000;
  return options;
}

TEST(ObsClusterTest, CatalogCoversEveryRegisteredMetric) {
  sim::ClusterHarness cluster(ObsClusterOptions(7), FlexiEngine());
  ASSERT_TRUE(cluster.Bootstrap().ok());
  ASSERT_FALSE(cluster.WaitForPrimary(30 * kSecond).empty());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.SyncWrite("k" + std::to_string(i), "v").status.ok());
  }
  cluster.loop()->RunFor(2 * kSecond);

  auto check_registry = [](const std::string& where,
                           const metrics::MetricRegistry* registry) {
    for (const std::string& name : registry->Names()) {
      EXPECT_NE(FindMetricInfo(name), nullptr)
          << where << " registers undocumented metric '" << name
          << "' — add it to src/obs/catalog.cc (and DESIGN.md §14)";
    }
  };
  for (const MemberId& id : cluster.ids()) {
    check_registry(id, cluster.node(id)->metrics());
  }
  check_registry("network", cluster.net_metrics());
}

TEST(ObsClusterTest, RaftstatReportsRolesAndPeers) {
  sim::ClusterHarness cluster(ObsClusterOptions(11), FlexiEngine());
  ASSERT_TRUE(cluster.Bootstrap().ok());
  const MemberId primary = cluster.WaitForPrimary(30 * kSecond);
  ASSERT_FALSE(primary.empty());
  ASSERT_TRUE(cluster.SyncWrite("k", "v").status.ok());
  cluster.loop()->RunFor(1 * kSecond);

  const std::string json = cluster.RaftstatJson();
  EXPECT_NE(json.find("\"nodes\":{"), std::string::npos);
  EXPECT_NE(json.find("\"" + primary + "\""), std::string::npos);
  EXPECT_NE(json.find("\"role\":\"leader\""), std::string::npos);
  EXPECT_NE(json.find("\"peers\":["), std::string::npos);
  EXPECT_NE(json.find("\"executed_gtids\""), std::string::npos);

  const std::string text = cluster.RaftstatText();
  EXPECT_NE(text.find(primary), std::string::npos);
  EXPECT_NE(text.find("leader"), std::string::npos);

  // The sampler ran on the bootstrap cadence and saw raft activity.
  ASSERT_TRUE(cluster.observability_enabled());
  EXPECT_GT(cluster.sampler()->window_count(), 0u);
  EXPECT_NE(cluster.sampler()->SeriesJson().find("window_ts_us"),
            std::string::npos);
}

TEST(ObsClusterTest, HealthOutageAgreesWithDowntimeProbe) {
  sim::ClusterOptions options = ObsClusterOptions(13);
  // Fast failure detection so the failover resolves quickly (the chaos
  // runner's settings).
  options.raft.heartbeat_interval_micros = 100'000;
  options.raft.election_jitter_micros = 150'000;
  options.raft.election_round_timeout_micros = 600'000;
  sim::ClusterHarness cluster(options, FlexiEngine());
  ASSERT_TRUE(cluster.Bootstrap().ok());
  const MemberId primary = cluster.WaitForPrimary(30 * kSecond);
  ASSERT_FALSE(primary.empty());
  ASSERT_TRUE(cluster.SyncWrite("warm", "up").status.ok());
  cluster.loop()->RunFor(2 * kSecond);
  ASSERT_TRUE(cluster.health()->ClusterHealthy());

  constexpr uint64_t kProbeInterval = 10'000;
  // The monitor watched the bootstrap election too; only windows opened
  // after this point belong to the measured failover.
  const size_t outages_before = cluster.health()->outages().size();
  const auto result = cluster.MeasureWriteDowntime(
      [&]() { cluster.Crash(primary); }, kProbeInterval);
  ASSERT_TRUE(result.recovered);
  ASSERT_GT(result.downtime_micros, 0u);

  // The health plane saw the same failover from the inside: its longest
  // outage window must agree with the client-side probe to within one
  // probe interval on each edge (both views are tick-quantised).
  ASSERT_GT(cluster.health()->outages().size(), outages_before);
  uint64_t outage = 0;
  for (size_t i = outages_before; i < cluster.health()->outages().size();
       ++i) {
    outage = std::max(outage,
                      cluster.health()->outages()[i].duration_micros());
  }
  const uint64_t tolerance =
      kProbeInterval + options.obs.sample_interval_micros;
  EXPECT_LE(outage, result.downtime_micros + tolerance)
      << "health outage " << outage << "us vs probe "
      << result.downtime_micros << "us";
  EXPECT_GE(outage + tolerance, result.downtime_micros)
      << "health outage " << outage << "us vs probe "
      << result.downtime_micros << "us";

  // The healthy->unhealthy transition tripped the flight recorder.
  ASSERT_NE(cluster.flight_recorder(), nullptr);
  EXPECT_GT(cluster.flight_recorder()->captured(), 0u);
  EXPECT_NE(
      cluster.flight_recorder()->LastBundleJson().find("health_transition"),
      std::string::npos);
}

// --- Chaos-runner bundles ----------------------------------------------------

chaos::ChaosOptions ChaosTopology() {
  chaos::ChaosOptions options;
  options.cluster.topology.db_regions = 3;
  options.cluster.topology.logtailers_per_db = 2;
  options.cluster.topology.learners = 1;
  return options;
}

TEST(ChaosObsTest, SameSeedProducesByteIdenticalBundle) {
  chaos::NemesisOptions nemesis;
  nemesis.duration_micros = 8'000'000;
  nemesis.quiesce_interval_micros = 4'000'000;
  const std::vector<MemberId> members =
      chaos::TopologyMemberIds(ChaosTopology().cluster);
  // Scan a few seeds for a schedule that injects at least one crash (the
  // guaranteed trigger); generated schedules almost always have one.
  chaos::Schedule schedule;
  bool found = false;
  for (uint64_t seed = 1; seed <= 8 && !found; ++seed) {
    schedule = chaos::GenerateSchedule(seed, members, nemesis);
    for (const chaos::FaultStep& step : schedule.steps) {
      if (step.action == chaos::FaultAction::kCrash ||
          step.action == chaos::FaultAction::kCrashTorn) {
        found = true;
        break;
      }
    }
  }
  ASSERT_TRUE(found) << "no generated schedule with a crash step";

  chaos::ChaosRunner runner(ChaosTopology(), FlexiEngine());
  const chaos::ChaosReport report_a = runner.Run(schedule);
  const std::string bundle_a = runner.LastBundleJson();
  const chaos::ChaosReport report_b = runner.Run(schedule);
  const std::string bundle_b = runner.LastBundleJson();

  // The obs plane is read-only: the report's byte-identity contract
  // still holds with the recorder armed, and the bundle itself is
  // deterministic.
  EXPECT_EQ(report_a.ToText(), report_b.ToText());
  ASSERT_FALSE(bundle_a.empty());
  EXPECT_EQ(bundle_a, bundle_b);

  // The bundle is self-contained: all four sections present.
  EXPECT_NE(bundle_a.find("\"trigger\":{"), std::string::npos);
  EXPECT_NE(bundle_a.find("\"raftstat\":{"), std::string::npos);
  EXPECT_NE(bundle_a.find("\"trace_tail\":["), std::string::npos);
  EXPECT_NE(bundle_a.find("\"metrics_series\":{"), std::string::npos);
  // And raftstat text is available for --raftstat.
  EXPECT_NE(runner.RaftstatText().find("term"), std::string::npos);
}

TEST(ChaosObsTest, InvariantViolationEmitsBundle) {
  // The chaos self-test's seeded durability bug (a commit quorum that
  // counts received-but-unsynced acks) must leave a forensic bundle
  // whose trigger names the violation — the `--bundle-out` artifact an
  // investigator starts from.
  chaos::ChaosOptions options;
  options.cluster.topology.db_regions = 1;
  options.cluster.topology.logtailers_per_db = 2;
  options.cluster.topology.learners = 0;
  options.write_interval_micros = 5'000;
  options.cluster.raft.unsafe_commit_on_received = true;

  chaos::Schedule schedule;
  schedule.seed = 7;
  schedule.duration_micros = 2'000'000;
  schedule.quiesce_interval_micros = 2'000'000;
  auto step = [](uint64_t at, chaos::FaultAction action,
                 std::vector<std::string> targets) {
    chaos::FaultStep s;
    s.at_micros = at;
    s.action = action;
    s.targets = std::move(targets);
    return s;
  };
  schedule.steps = {
      step(250'000, chaos::FaultAction::kCrashTorn, {"db0"}),
      step(250'000, chaos::FaultAction::kCrashTorn, {"lt0a"}),
      step(250'000, chaos::FaultAction::kCrashTorn, {"lt0b"}),
      step(300'000, chaos::FaultAction::kRestart, {"lt0a"}),
      step(300'000, chaos::FaultAction::kRestart, {"lt0b"}),
  };

  chaos::ChaosRunner runner(options, FlexiEngine());
  const chaos::ChaosReport report = runner.Run(schedule);
  ASSERT_FALSE(report.passed) << report.ToText();

  const std::string bundle = runner.LastBundleJson();
  ASSERT_FALSE(bundle.empty());
  EXPECT_NE(bundle.find("\"kind\":\"invariant_violation\""),
            std::string::npos)
      << bundle.substr(0, 200);
  EXPECT_NE(bundle.find("\"raftstat\":{"), std::string::npos);
  EXPECT_NE(bundle.find("\"trace_tail\":["), std::string::npos);
  EXPECT_NE(bundle.find("\"metrics_series\":{"), std::string::npos);
}

}  // namespace
}  // namespace myraft::obs

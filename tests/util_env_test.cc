// Env contract tests run against both PosixEnv (tmp dir) and MemEnv.

#include "util/env.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace myraft {
namespace {

enum class EnvKind { kPosix, kMem };

class EnvTest : public ::testing::TestWithParam<EnvKind> {
 protected:
  void SetUp() override {
    if (GetParam() == EnvKind::kPosix) {
      env_ = GetPosixEnv();
      char tmpl[] = "/tmp/myraft_env_test_XXXXXX";
      ASSERT_NE(mkdtemp(tmpl), nullptr);
      dir_ = tmpl;
    } else {
      owned_env_ = NewMemEnv();
      env_ = owned_env_.get();
      dir_ = "/mem";
      ASSERT_TRUE(env_->CreateDirIfMissing(dir_).ok());
    }
  }

  std::string Path(const std::string& name) { return dir_ + "/" + name; }

  Env* env_ = nullptr;
  std::unique_ptr<Env> owned_env_;
  std::string dir_;
};

TEST_P(EnvTest, WriteThenReadBack) {
  ASSERT_TRUE(
      env_->WriteStringToFile("hello env", Path("f1"), /*sync=*/true).ok());
  auto contents = env_->ReadFileToString(Path("f1"));
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "hello env");
}

TEST_P(EnvTest, AppendableFilePreservesExisting) {
  ASSERT_TRUE(env_->WriteStringToFile("abc", Path("f2")).ok());
  auto file = env_->NewAppendableFile(Path("f2"));
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("def").ok());
  ASSERT_TRUE((*file)->Close().ok());
  EXPECT_EQ(*env_->ReadFileToString(Path("f2")), "abcdef");
  EXPECT_EQ(*env_->GetFileSize(Path("f2")), 6u);
}

TEST_P(EnvTest, WritableFileTruncates) {
  ASSERT_TRUE(env_->WriteStringToFile("long old contents", Path("f3")).ok());
  ASSERT_TRUE(env_->WriteStringToFile("new", Path("f3")).ok());
  EXPECT_EQ(*env_->ReadFileToString(Path("f3")), "new");
}

TEST_P(EnvTest, SequentialReadInChunks) {
  std::string data(10000, 'q');
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<char>(i % 251);
  ASSERT_TRUE(env_->WriteStringToFile(data, Path("f4")).ok());

  auto file = env_->NewSequentialFile(Path("f4"));
  ASSERT_TRUE(file.ok());
  std::string got;
  char scratch[333];
  while (true) {
    Slice chunk;
    ASSERT_TRUE((*file)->Read(sizeof(scratch), &chunk, scratch).ok());
    if (chunk.empty()) break;
    got.append(chunk.data(), chunk.size());
  }
  EXPECT_EQ(got, data);
}

TEST_P(EnvTest, SequentialSkip) {
  ASSERT_TRUE(env_->WriteStringToFile("0123456789", Path("f5")).ok());
  auto file = env_->NewSequentialFile(Path("f5"));
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Skip(4).ok());
  Slice chunk;
  char scratch[16];
  ASSERT_TRUE((*file)->Read(16, &chunk, scratch).ok());
  EXPECT_EQ(chunk.ToString(), "456789");
}

TEST_P(EnvTest, RandomAccessRead) {
  ASSERT_TRUE(env_->WriteStringToFile("abcdefghij", Path("f6")).ok());
  auto file = env_->NewRandomAccessFile(Path("f6"));
  ASSERT_TRUE(file.ok());
  EXPECT_EQ((*file)->Size(), 10u);
  char scratch[16];
  Slice out;
  ASSERT_TRUE((*file)->Read(3, 4, &out, scratch).ok());
  EXPECT_EQ(out.ToString(), "defg");
  // Reads past EOF return short/empty, not error.
  ASSERT_TRUE((*file)->Read(8, 10, &out, scratch).ok());
  EXPECT_EQ(out.ToString(), "ij");
  ASSERT_TRUE((*file)->Read(100, 10, &out, scratch).ok());
  EXPECT_TRUE(out.empty());
}

TEST_P(EnvTest, MissingFileIsNotFound) {
  EXPECT_FALSE(env_->FileExists(Path("nope")));
  EXPECT_TRUE(env_->NewSequentialFile(Path("nope")).status().IsNotFound());
  EXPECT_TRUE(env_->NewRandomAccessFile(Path("nope")).status().IsNotFound());
  EXPECT_TRUE(env_->GetFileSize(Path("nope")).status().IsNotFound());
}

TEST_P(EnvTest, GetChildrenListsFiles) {
  ASSERT_TRUE(env_->WriteStringToFile("x", Path("child_a")).ok());
  ASSERT_TRUE(env_->WriteStringToFile("y", Path("child_b")).ok());
  auto children = env_->GetChildren(dir_);
  ASSERT_TRUE(children.ok());
  int found = 0;
  for (const auto& c : *children) {
    if (c == "child_a" || c == "child_b") ++found;
  }
  EXPECT_EQ(found, 2);
}

TEST_P(EnvTest, RemoveFile) {
  ASSERT_TRUE(env_->WriteStringToFile("x", Path("doomed")).ok());
  EXPECT_TRUE(env_->FileExists(Path("doomed")));
  ASSERT_TRUE(env_->RemoveFile(Path("doomed")).ok());
  EXPECT_FALSE(env_->FileExists(Path("doomed")));
  EXPECT_FALSE(env_->RemoveFile(Path("doomed")).ok());
}

TEST_P(EnvTest, RenameFile) {
  ASSERT_TRUE(env_->WriteStringToFile("payload", Path("from")).ok());
  ASSERT_TRUE(env_->RenameFile(Path("from"), Path("to")).ok());
  EXPECT_FALSE(env_->FileExists(Path("from")));
  EXPECT_EQ(*env_->ReadFileToString(Path("to")), "payload");
}

INSTANTIATE_TEST_SUITE_P(Envs, EnvTest,
                         ::testing::Values(EnvKind::kPosix, EnvKind::kMem),
                         [](const auto& info) {
                           return info.param == EnvKind::kPosix ? "Posix"
                                                                : "Mem";
                         });

}  // namespace
}  // namespace myraft

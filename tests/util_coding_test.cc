#include "util/coding.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace myraft {
namespace {

TEST(CodingTest, Fixed16RoundTrip) {
  for (uint32_t v : {0u, 1u, 255u, 256u, 65535u}) {
    std::string s;
    PutFixed16(&s, static_cast<uint16_t>(v));
    ASSERT_EQ(s.size(), 2u);
    Slice in(s);
    uint16_t out;
    ASSERT_TRUE(GetFixed16(&in, &out));
    EXPECT_EQ(out, v);
    EXPECT_TRUE(in.empty());
  }
}

TEST(CodingTest, Fixed32RoundTrip) {
  for (uint32_t v : {0u, 1u, 0xDEADBEEFu, UINT32_MAX}) {
    std::string s;
    PutFixed32(&s, v);
    Slice in(s);
    uint32_t out;
    ASSERT_TRUE(GetFixed32(&in, &out));
    EXPECT_EQ(out, v);
  }
}

TEST(CodingTest, Fixed64RoundTrip) {
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{1} << 40, UINT64_MAX}) {
    std::string s;
    PutFixed64(&s, v);
    Slice in(s);
    uint64_t out;
    ASSERT_TRUE(GetFixed64(&in, &out));
    EXPECT_EQ(out, v);
  }
}

TEST(CodingTest, Varint64Boundaries) {
  std::vector<uint64_t> values = {0, 1, 127, 128, 16383, 16384};
  for (int shift = 14; shift < 64; shift += 7) {
    values.push_back((uint64_t{1} << shift) - 1);
    values.push_back(uint64_t{1} << shift);
  }
  values.push_back(UINT64_MAX);

  std::string s;
  for (uint64_t v : values) PutVarint64(&s, v);
  Slice in(s);
  for (uint64_t v : values) {
    uint64_t out;
    ASSERT_TRUE(GetVarint64(&in, &out));
    EXPECT_EQ(out, v);
  }
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, VarintLengthMatchesEncoding) {
  Random rng(42);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Next() >> (rng.Uniform(64));
    std::string s;
    PutVarint64(&s, v);
    EXPECT_EQ(static_cast<int>(s.size()), VarintLength(v)) << v;
  }
}

TEST(CodingTest, Varint32RejectsOverflow) {
  std::string s;
  PutVarint64(&s, uint64_t{UINT32_MAX} + 1);
  Slice in(s);
  uint32_t out;
  EXPECT_FALSE(GetVarint32(&in, &out));
}

TEST(CodingTest, TruncatedVarintFails) {
  std::string s;
  PutVarint64(&s, UINT64_MAX);
  for (size_t len = 0; len + 1 < s.size(); ++len) {
    Slice in(s.data(), len);
    uint64_t out;
    EXPECT_FALSE(GetVarint64(&in, &out)) << "len=" << len;
  }
}

TEST(CodingTest, TruncatedFixedFails) {
  std::string s = "abc";
  Slice in(s);
  uint32_t v32;
  EXPECT_FALSE(GetFixed32(&in, &v32));
  uint64_t v64;
  EXPECT_FALSE(GetFixed64(&in, &v64));
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string s;
  PutLengthPrefixed(&s, Slice("hello"));
  PutLengthPrefixed(&s, Slice(""));
  PutLengthPrefixed(&s, Slice(std::string(100000, 'x')));
  Slice in(s);
  Slice a, b, c;
  ASSERT_TRUE(GetLengthPrefixed(&in, &a));
  ASSERT_TRUE(GetLengthPrefixed(&in, &b));
  ASSERT_TRUE(GetLengthPrefixed(&in, &c));
  EXPECT_EQ(a.ToString(), "hello");
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(c.size(), 100000u);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, LengthPrefixedTruncatedBodyFails) {
  std::string s;
  PutVarint64(&s, 10);
  s += "short";
  Slice in(s);
  Slice out;
  EXPECT_FALSE(GetLengthPrefixed(&in, &out));
}

// Property sweep: random interleavings of all encoders round-trip.
class CodingFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodingFuzzTest, MixedRoundTrip) {
  Random rng(GetParam());
  std::string s;
  struct Op {
    int kind;
    uint64_t value;
    std::string bytes;
  };
  std::vector<Op> ops;
  for (int i = 0; i < 200; ++i) {
    Op op;
    op.kind = static_cast<int>(rng.Uniform(4));
    op.value = rng.Next() >> rng.Uniform(64);
    switch (op.kind) {
      case 0:
        PutFixed32(&s, static_cast<uint32_t>(op.value));
        break;
      case 1:
        PutFixed64(&s, op.value);
        break;
      case 2:
        PutVarint64(&s, op.value);
        break;
      case 3: {
        op.bytes = std::string(rng.Uniform(64), static_cast<char>(rng.Next()));
        PutLengthPrefixed(&s, Slice(op.bytes));
        break;
      }
    }
    ops.push_back(op);
  }
  Slice in(s);
  for (const Op& op : ops) {
    switch (op.kind) {
      case 0: {
        uint32_t v;
        ASSERT_TRUE(GetFixed32(&in, &v));
        EXPECT_EQ(v, static_cast<uint32_t>(op.value));
        break;
      }
      case 1: {
        uint64_t v;
        ASSERT_TRUE(GetFixed64(&in, &v));
        EXPECT_EQ(v, op.value);
        break;
      }
      case 2: {
        uint64_t v;
        ASSERT_TRUE(GetVarint64(&in, &v));
        EXPECT_EQ(v, op.value);
        break;
      }
      case 3: {
        Slice v;
        ASSERT_TRUE(GetLengthPrefixed(&in, &v));
        EXPECT_EQ(v.ToString(), op.bytes);
        break;
      }
    }
  }
  EXPECT_TRUE(in.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodingFuzzTest,
                         ::testing::Values(1, 2, 3, 17, 99, 12345));

}  // namespace
}  // namespace myraft

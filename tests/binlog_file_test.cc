// Direct BinlogFileWriter/Reader tests (header handling, corruption) and
// the SHOW BINLOG EVENTS surface, plus decode-robustness fuzzing for the
// wire and GTID parsers: malformed input must error, never crash.

#include <gtest/gtest.h>

#include "binlog/binlog_file.h"
#include "binlog/binlog_manager.h"
#include "binlog/transaction.h"
#include "util/random.h"
#include "wire/messages.h"

namespace myraft::binlog {
namespace {

TEST(BinlogFileTest, WriterEmitsValidatedHeader) {
  auto env = NewMemEnv();
  BinlogFileWriter::Options options;
  options.server_version = "myraft-test";
  options.server_id = 3;
  options.created_micros = 42;
  options.previous_gtids.AddRange(Uuid::FromIndex(1), 1, 9);
  auto writer = BinlogFileWriter::Create(env.get(), "/f", options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Close().ok());

  auto reader = BinlogFileReader::Open(env.get(), "/f");
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ((*reader)->format().server_version, "myraft-test");
  EXPECT_EQ((*reader)->format().created_micros, 42u);
  EXPECT_TRUE(
      (*reader)->previous_gtids().Contains({Uuid::FromIndex(1), 5}));
  // Clean EOF right after the header.
  uint64_t offset;
  EXPECT_TRUE((*reader)->Next(&offset).status().IsEndOfFile());
  EXPECT_EQ((*reader)->offset(), (*reader)->body_start());
}

TEST(BinlogFileTest, BadMagicRejected) {
  auto env = NewMemEnv();
  ASSERT_TRUE(env->WriteStringToFile("NOTABINLOG??????", "/bad").ok());
  EXPECT_TRUE(BinlogFileReader::Open(env.get(), "/bad")
                  .status()
                  .IsCorruption());
}

TEST(BinlogFileTest, MissingHeaderEventsRejected) {
  auto env = NewMemEnv();
  // Magic followed by a non-header event.
  std::string contents(kBinlogMagic, kBinlogMagicLen);
  MakeEvent(EventType::kBegin, 0, 0, {1, 1}, "BEGIN").EncodeTo(&contents);
  ASSERT_TRUE(env->WriteStringToFile(contents, "/f").ok());
  EXPECT_TRUE(
      BinlogFileReader::Open(env.get(), "/f").status().IsCorruption());
}

TEST(BinlogFileTest, ReaderStopsAtCorruptionBoundary) {
  auto env = NewMemEnv();
  BinlogFileWriter::Options options;
  auto writer = BinlogFileWriter::Create(env.get(), "/f", options);
  ASSERT_TRUE(writer.ok());
  const BinlogEvent good = MakeEvent(EventType::kBegin, 1, 2, {1, 1}, "ok");
  ASSERT_TRUE((*writer)->AppendEvent(good).ok());
  ASSERT_TRUE((*writer)->AppendRaw("garbage-tail-bytes").ok());
  ASSERT_TRUE((*writer)->Close().ok());

  auto reader = BinlogFileReader::Open(env.get(), "/f");
  ASSERT_TRUE(reader.ok());
  uint64_t offset;
  auto first = (*reader)->Next(&offset);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, good);
  const uint64_t boundary = (*reader)->offset();
  auto second = (*reader)->Next(&offset);
  EXPECT_TRUE(second.status().IsCorruption());
  // offset() stays at the last good boundary for tail trimming.
  EXPECT_EQ((*reader)->offset(), boundary);
}

TEST(BinlogFileTest, ShowBinlogEventsDescribesStream) {
  auto env = NewMemEnv();
  ManualClock clock;
  BinlogManagerOptions options;
  options.dir = "/log";
  options.clock = &clock;
  auto manager = BinlogManager::Open(env.get(), options);
  ASSERT_TRUE(manager.ok());

  TransactionPayloadBuilder builder;
  RowOperation op;
  op.kind = RowOperation::Kind::kInsert;
  op.database = "db";
  op.table = "users";
  op.after_image = "k=v";
  builder.AddOperation(op);
  const Gtid gtid{Uuid::FromIndex(2), 7};
  ASSERT_TRUE((*manager)
                  ->AppendEntry(LogEntry::Make(
                      {1, 1}, EntryType::kTransaction,
                      builder.Finalize(gtid, {1, 1}, 1, 0, 9)))
                  .ok());
  ASSERT_TRUE((*manager)
                  ->AppendEntry(LogEntry::Make({1, 2}, EntryType::kNoOp, ""))
                  .ok());

  const std::string file = (*manager)->ListLogFiles().front();
  auto events = (*manager)->DescribeFile(file);
  ASSERT_TRUE(events.ok()) << events.status();
  // FormatDescription, PreviousGtids, Gtid, Begin, TableMap, WriteRows,
  // Xid, Metadata.
  ASSERT_EQ(events->size(), 8u);
  EXPECT_EQ((*events)[0].type, EventType::kFormatDescription);
  EXPECT_EQ((*events)[2].type, EventType::kGtid);
  EXPECT_EQ((*events)[2].info, gtid.ToString());
  EXPECT_EQ((*events)[2].opid, (OpId{1, 1}));
  EXPECT_EQ((*events)[4].type, EventType::kTableMap);
  EXPECT_EQ((*events)[4].info, "db.users");
  EXPECT_EQ((*events)[7].type, EventType::kMetadata);
  EXPECT_EQ((*events)[7].info, "noop");

  EXPECT_TRUE(
      (*manager)->DescribeFile("binlog.000099").status().IsNotFound());
}

// --- Decode robustness fuzzing -----------------------------------------------

class DecodeFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DecodeFuzzTest, RandomBytesNeverCrashDecoders) {
  Random rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    std::string bytes(rng.Uniform(400), '\0');
    for (char& c : bytes) c = static_cast<char>(rng.Next());
    // Every decoder must return an error or a (harmless) value.
    (void)DecodeMessage(bytes);
    (void)GtidSet::Decode(bytes);
    (void)GtidSet::Parse(bytes);
    Slice entry_in(bytes);
    (void)LogEntry::DecodeFrom(&entry_in);
    Slice event_in(bytes);
    (void)BinlogEvent::DecodeFrom(&event_in);
    (void)ParseTransactionPayload(bytes);
    (void)DecodeMembershipConfig(bytes);
  }
}

TEST_P(DecodeFuzzTest, TruncatedValidMessagesNeverCrash) {
  Random rng(GetParam() + 100);
  AppendEntriesRequest request;
  request.leader = "a";
  request.dest = "b";
  request.route = {"r1", "r2"};
  request.term = 3;
  request.entries.push_back(
      LogEntry::Make({3, 9}, EntryType::kTransaction, std::string(300, 'q')));
  std::string buf;
  EncodeMessage(Message(request), &buf);
  for (int i = 0; i < 500; ++i) {
    std::string mutated = buf;
    // Random truncation + byte flips.
    mutated.resize(rng.Uniform(mutated.size() + 1));
    if (!mutated.empty() && rng.OneIn(2)) {
      mutated[rng.Uniform(mutated.size())] ^=
          static_cast<char>(1 + rng.Uniform(255));
    }
    (void)DecodeMessage(mutated);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecodeFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace myraft::binlog

// Message-level unit tests for RaftConsensus: a single instance driven by
// hand-crafted RPCs through a capturing outbox, covering protocol edge
// cases that are hard to hit deterministically in cluster tests.

#include <gtest/gtest.h>

#include "raft/consensus.h"
#include "util/logging.h"

namespace myraft::raft {
namespace {

class CapturingOutbox final : public RaftOutbox {
 public:
  void Send(Message message) override { sent.push_back(std::move(message)); }

  template <typename T>
  std::vector<T> OfType() const {
    std::vector<T> out;
    for (const auto& m : sent) {
      if (const T* typed = std::get_if<T>(&m)) out.push_back(*typed);
    }
    return out;
  }

  template <typename T>
  T Last() const {
    auto all = OfType<T>();
    MYRAFT_CHECK(!all.empty());
    return all.back();
  }

  std::vector<Message> sent;
};

/// LogAbstraction wrapper injecting Append/Sync faults into a real log,
/// for the mid-batch-failure and durability-reporting regression tests.
class FaultyLog final : public LogAbstraction {
 public:
  explicit FaultyLog(LogAbstraction* base) : base_(base) {}

  /// -1 = healthy; N >= 0 = the next N appends succeed, then all appends
  /// fail until the test resets this.
  int fail_append_countdown = -1;
  bool fail_sync = false;

  Status Append(const LogEntry& entry) override {
    if (fail_append_countdown == 0) {
      return Status::IoError("injected append fault");
    }
    if (fail_append_countdown > 0) --fail_append_countdown;
    return base_->Append(entry);
  }
  Status Sync() override {
    if (fail_sync) return Status::IoError("injected sync fault");
    return base_->Sync();
  }
  Result<LogEntry> Read(uint64_t index) const override {
    return base_->Read(index);
  }
  Result<std::vector<LogEntry>> ReadBatch(uint64_t first_index,
                                          size_t max_entries,
                                          uint64_t max_bytes) const override {
    return base_->ReadBatch(first_index, max_entries, max_bytes);
  }
  Result<OpId> OpIdAt(uint64_t index) const override {
    return base_->OpIdAt(index);
  }
  OpId LastOpId() const override { return base_->LastOpId(); }
  uint64_t FirstIndex() const override { return base_->FirstIndex(); }
  bool HasEntry(uint64_t index) const override {
    return base_->HasEntry(index);
  }
  Status TruncateAfter(uint64_t index) override {
    return base_->TruncateAfter(index);
  }

 private:
  LogAbstraction* base_;
};

class RecordingListener final : public StateMachineListener {
 public:
  void OnLeadershipAcquired(uint64_t term, OpId noop) override {
    ++acquired;
  }
  void OnLeadershipLost(uint64_t term) override { ++lost; }
  void OnCommitAdvanced(OpId marker) override { last_commit = marker; }
  void OnEntryAppended(const LogEntry& entry) override { ++appended; }
  void OnSuffixTruncated(OpId new_last) override { ++truncated; }

  int acquired = 0;
  int lost = 0;
  int appended = 0;
  int truncated = 0;
  OpId last_commit;
};

class ConsensusUnitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    meta_store_ =
        std::make_unique<ConsensusMetadataStore>(env_.get(), "/cmeta");
    RaftOptions options;
    options.self = "a";
    options.region = "r0";
    options.enable_pre_vote = false;  // direct elections in unit tests
    consensus_ = std::make_unique<RaftConsensus>(
        options, &faulty_log_, &quorum_, meta_store_.get(), &clock_, &rng_,
        &outbox_, &listener_);
    MembershipConfig config;
    config.members = {
        {"a", "r0", MemberKind::kMySql, RaftMemberType::kVoter},
        {"b", "r0", MemberKind::kMySql, RaftMemberType::kVoter},
        {"c", "r1", MemberKind::kMySql, RaftMemberType::kVoter},
    };
    ASSERT_TRUE(consensus_->Bootstrap(config).ok());
  }

  /// Drives `a` to leadership of term 1 by granting b's vote.
  void BecomeLeader() {
    ASSERT_TRUE(
        consensus_->StartElection(ElectionMode::kRealElection).ok());
    VoteResponse grant;
    grant.from = "b";
    grant.dest = "a";
    grant.term = consensus_->term();
    grant.granted = true;
    consensus_->HandleMessage(Message(grant));
    ASSERT_EQ(consensus_->role(), RaftRole::kLeader);
    outbox_.sent.clear();
  }

  AppendEntriesRequest MakeAppend(uint64_t term, OpId prev,
                                  std::vector<LogEntry> entries,
                                  OpId commit = kZeroOpId,
                                  const MemberId& leader = "b") {
    AppendEntriesRequest request;
    request.leader = leader;
    request.dest = "a";
    request.term = term;
    request.prev = prev;
    request.commit_marker = commit;
    request.entries = std::move(entries);
    return request;
  }

  LogEntry E(uint64_t term, uint64_t index, const std::string& payload) {
    return LogEntry::Make({term, index}, EntryType::kNoOp, payload);
  }

  /// Rebuilds `consensus_` with LeaseGuard leases on (fresh meta dir,
  /// same log/clock/outbox). Call before any appends.
  void EnableLeases(uint64_t duration_micros = 1'200'000,
                    uint64_t margin_micros = 100'000) {
    RaftOptions options;
    options.self = "a";
    options.region = "r0";
    // Leases require pre-vote (Start() rejects the combination); tests
    // still elect directly via StartElection(kRealElection).
    options.enable_pre_vote = true;
    options.enable_leader_leases = true;
    options.lease_duration_micros = duration_micros;
    options.lease_drift_margin_micros = margin_micros;
    lease_meta_store_ =
        std::make_unique<ConsensusMetadataStore>(env_.get(), "/cmeta-lease");
    consensus_ = std::make_unique<RaftConsensus>(
        options, &faulty_log_, &quorum_, lease_meta_store_.get(), &clock_,
        &rng_, &outbox_, &listener_);
    MembershipConfig config;
    config.members = {
        {"a", "r0", MemberKind::kMySql, RaftMemberType::kVoter},
        {"b", "r0", MemberKind::kMySql, RaftMemberType::kVoter},
        {"c", "r1", MemberKind::kMySql, RaftMemberType::kVoter},
    };
    ASSERT_TRUE(consensus_->Bootstrap(config).ok());
  }

  /// Durable ack of the leader's whole log from `peer`, echoing
  /// `lease_echo_micros` (0 = no echo, e.g. a pre-lease follower).
  void AckAll(const MemberId& peer, uint64_t lease_echo_micros) {
    AppendEntriesResponse ack;
    ack.from = peer;
    ack.dest = "a";
    ack.term = consensus_->term();
    ack.success = true;
    ack.last_received = consensus_->last_logged();
    ack.last_durable_index = ack.last_received.index;
    ack.lease_granted_micros = lease_echo_micros;
    consensus_->HandleMessage(Message(ack));
  }

  /// Heartbeats all peers and returns the send timestamp the requests
  /// were lease-stamped with.
  uint64_t SendStampedHeartbeats() {
    clock_.AdvanceMicros(600'000);  // > heartbeat interval
    outbox_.sent.clear();
    consensus_->Tick();
    const auto request = outbox_.Last<AppendEntriesRequest>();
    EXPECT_EQ(request.lease_sent_micros, clock_.NowMicros());
    return request.lease_sent_micros;
  }

  ManualClock clock_;
  Random rng_{1};
  std::unique_ptr<Env> env_;
  std::unique_ptr<ConsensusMetadataStore> meta_store_;
  std::unique_ptr<ConsensusMetadataStore> lease_meta_store_;
  MemLog log_;
  FaultyLog faulty_log_{&log_};
  MajorityQuorumEngine quorum_;
  CapturingOutbox outbox_;
  RecordingListener listener_;
  std::unique_ptr<RaftConsensus> consensus_;
};

TEST_F(ConsensusUnitTest, StaleTermAppendRejected) {
  consensus_->HandleMessage(
      Message(MakeAppend(1, kZeroOpId, {E(1, 1, "x")})));
  ASSERT_EQ(consensus_->term(), 1u);
  // A lower-term append is rejected with our current term.
  outbox_.sent.clear();
  consensus_->HandleMessage(
      Message(MakeAppend(0, kZeroOpId, {E(0, 1, "y")})));
  auto response = outbox_.Last<AppendEntriesResponse>();
  EXPECT_FALSE(response.success);
  EXPECT_EQ(response.term, 1u);
}

TEST_F(ConsensusUnitTest, DuplicateAppendIsIdempotent) {
  const auto request = MakeAppend(1, kZeroOpId, {E(1, 1, "x"), E(1, 2, "y")});
  consensus_->HandleMessage(Message(request));
  const int appended_before = listener_.appended;
  consensus_->HandleMessage(Message(request));  // replayed RPC
  EXPECT_EQ(listener_.appended, appended_before);
  EXPECT_EQ(consensus_->last_logged(), (OpId{1, 2}));
  auto response = outbox_.Last<AppendEntriesResponse>();
  EXPECT_TRUE(response.success);
  EXPECT_EQ(response.last_received, (OpId{1, 2}));
}

TEST_F(ConsensusUnitTest, MissingPrevAsksForRewind) {
  consensus_->HandleMessage(
      Message(MakeAppend(1, OpId{1, 5}, {E(1, 6, "future")})));
  auto response = outbox_.Last<AppendEntriesResponse>();
  EXPECT_FALSE(response.success);
  EXPECT_EQ(response.last_received, kZeroOpId);  // hint: our last
}

TEST_F(ConsensusUnitTest, ConflictingSuffixTruncatedAndReplaced) {
  consensus_->HandleMessage(Message(
      MakeAppend(1, kZeroOpId, {E(1, 1, "a"), E(1, 2, "old"), E(1, 3, "old")})));
  // New leader at term 2 overwrites indexes 2-3.
  consensus_->HandleMessage(
      Message(MakeAppend(2, OpId{1, 1}, {E(2, 2, "new")}, kZeroOpId, "c")));
  EXPECT_EQ(listener_.truncated, 1);
  EXPECT_EQ(consensus_->last_logged(), (OpId{2, 2}));
  auto entry = log_.Read(2);
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->payload, "new");
  EXPECT_FALSE(log_.Read(3).ok());
}

TEST_F(ConsensusUnitTest, MidBatchAppendFailureReportsRealTail) {
  // Regression: a mid-batch AppendToLocalLog failure used to fall through
  // to the success response, acking entries the follower never wrote; the
  // leader then advanced next_index past them and the ring lost data.
  faulty_log_.fail_append_countdown = 1;  // entry 1 lands, entry 2 fails
  consensus_->HandleMessage(Message(MakeAppend(
      1, kZeroOpId, {E(1, 1, "a"), E(1, 2, "b"), E(1, 3, "c")})));
  auto response = outbox_.Last<AppendEntriesResponse>();
  EXPECT_FALSE(response.success);
  EXPECT_EQ(response.last_received, (OpId{1, 1}));  // real appended tail
  EXPECT_EQ(response.last_durable_index, 1u);  // the partial prefix synced
  EXPECT_FALSE(log_.HasEntry(2));
  EXPECT_FALSE(log_.HasEntry(3));

  // The leader rewinds to the hinted tail and retries; once the log
  // heals, the remainder lands and the tail catches up.
  faulty_log_.fail_append_countdown = -1;
  consensus_->HandleMessage(
      Message(MakeAppend(1, OpId{1, 1}, {E(1, 2, "b"), E(1, 3, "c")})));
  response = outbox_.Last<AppendEntriesResponse>();
  EXPECT_TRUE(response.success);
  EXPECT_EQ(response.last_received, (OpId{1, 3}));
  EXPECT_EQ(response.last_durable_index, 3u);
}

TEST_F(ConsensusUnitTest, UnsyncedEntriesNeverReportedDurable) {
  // Regression: responses used to report last_durable_index =
  // last_received.index even when Sync() had not succeeded, so the leader
  // could count a received-but-unfsynced suffix towards the commit quorum
  // — entries a crash in that window would erase.
  faulty_log_.fail_sync = true;
  consensus_->HandleMessage(
      Message(MakeAppend(1, kZeroOpId, {E(1, 1, "a"), E(1, 2, "b")})));
  auto response = outbox_.Last<AppendEntriesResponse>();
  EXPECT_FALSE(response.success);  // sync failure is not an ack
  EXPECT_EQ(response.last_received, (OpId{1, 2}));  // entries are in the log
  EXPECT_EQ(response.last_durable_index, 0u);       // but none are durable

  // Rejections advertise only the synced tail too.
  outbox_.sent.clear();
  consensus_->HandleMessage(
      Message(MakeAppend(0, kZeroOpId, {E(0, 1, "stale")})));
  response = outbox_.Last<AppendEntriesResponse>();
  EXPECT_FALSE(response.success);
  EXPECT_EQ(response.last_durable_index, 0u);

  // Once fsync heals, even an empty heartbeat flushes the unsynced tail
  // and durability catches up to the log.
  faulty_log_.fail_sync = false;
  outbox_.sent.clear();
  consensus_->HandleMessage(Message(MakeAppend(1, OpId{1, 2}, {})));
  response = outbox_.Last<AppendEntriesResponse>();
  EXPECT_TRUE(response.success);
  EXPECT_EQ(response.last_received, (OpId{1, 2}));
  EXPECT_EQ(response.last_durable_index, 2u);
}

TEST_F(ConsensusUnitTest, LeaderIgnoresUndurableAcksForCommit) {
  // The leader's match_index must track what followers have fsynced, not
  // what they have merely received.
  BecomeLeader();
  auto opid = consensus_->Replicate(EntryType::kNoOp, "payload");
  ASSERT_TRUE(opid.ok());

  AppendEntriesResponse ack;
  ack.from = "b";
  ack.dest = "a";
  ack.term = consensus_->term();
  ack.success = true;
  ack.last_received = *opid;
  ack.last_durable_index = 0;  // received, not yet fsynced
  consensus_->HandleMessage(Message(ack));
  EXPECT_FALSE(consensus_->IsCommitted(*opid));

  ack.last_durable_index = opid->index;
  consensus_->HandleMessage(Message(ack));
  EXPECT_TRUE(consensus_->IsCommitted(*opid));
}

TEST_F(ConsensusUnitTest, CorruptEntryFromLeaderRejected) {
  LogEntry bad = E(1, 1, "payload");
  bad.payload[0] = 'X';  // breaks the checksum
  consensus_->HandleMessage(Message(MakeAppend(1, kZeroOpId, {bad})));
  auto response = outbox_.Last<AppendEntriesResponse>();
  EXPECT_FALSE(response.success);
  EXPECT_EQ(consensus_->last_logged(), kZeroOpId);
}

TEST_F(ConsensusUnitTest, CommitMarkerNeverExceedsLocalLog) {
  consensus_->HandleMessage(Message(
      MakeAppend(1, kZeroOpId, {E(1, 1, "x")}, /*commit=*/OpId{1, 10})));
  EXPECT_EQ(consensus_->commit_marker(), (OpId{1, 1}));
  EXPECT_EQ(listener_.last_commit, (OpId{1, 1}));
}

TEST_F(ConsensusUnitTest, CommitMarkerMonotonic) {
  consensus_->HandleMessage(Message(
      MakeAppend(1, kZeroOpId, {E(1, 1, "x"), E(1, 2, "y")}, OpId{1, 2})));
  EXPECT_EQ(consensus_->commit_marker().index, 2u);
  // A heartbeat with an older marker must not regress it.
  consensus_->HandleMessage(
      Message(MakeAppend(1, OpId{1, 2}, {}, OpId{1, 1})));
  EXPECT_EQ(consensus_->commit_marker().index, 2u);
}

TEST_F(ConsensusUnitTest, VoteDeniedToStaleLogAndPersisted) {
  consensus_->HandleMessage(
      Message(MakeAppend(1, kZeroOpId, {E(1, 1, "x")})));
  outbox_.sent.clear();

  // Candidate with an empty log at a higher term: term adopted, vote
  // denied on the log check.
  VoteRequest request;
  request.candidate = "c";
  request.dest = "a";
  request.term = 5;
  request.last_log = kZeroOpId;
  request.candidate_region = "r1";
  consensus_->HandleMessage(Message(request));
  auto response = outbox_.Last<VoteResponse>();
  EXPECT_FALSE(response.granted);
  EXPECT_EQ(response.reason, "stale-log");
  EXPECT_EQ(consensus_->term(), 5u);

  // An up-to-date candidate at the same term gets the vote...
  request.candidate = "b";
  request.last_log = {1, 1};
  consensus_->HandleMessage(Message(request));
  response = outbox_.Last<VoteResponse>();
  EXPECT_TRUE(response.granted);

  // ...and the vote binds within the term, including across restart.
  request.candidate = "c";
  consensus_->HandleMessage(Message(request));
  response = outbox_.Last<VoteResponse>();
  EXPECT_FALSE(response.granted);
  EXPECT_EQ(response.reason, "already-voted");

  RaftOptions options;
  options.self = "a";
  options.region = "r0";
  RaftConsensus restarted(options, &log_, &quorum_, meta_store_.get(),
                          &clock_, &rng_, &outbox_, &listener_);
  ASSERT_TRUE(restarted.Start().ok());
  EXPECT_EQ(restarted.term(), 5u);
  outbox_.sent.clear();
  restarted.HandleMessage(Message(request));  // c again at term 5
  response = outbox_.Last<VoteResponse>();
  EXPECT_FALSE(response.granted);
  EXPECT_EQ(response.reason, "already-voted");
}

TEST_F(ConsensusUnitTest, PreVoteDoesNotDisturbState) {
  consensus_->HandleMessage(
      Message(MakeAppend(3, kZeroOpId, {E(3, 1, "x")})));
  outbox_.sent.clear();

  VoteRequest pre;
  pre.candidate = "c";
  pre.dest = "a";
  pre.term = 4;
  pre.last_log = {3, 1};
  pre.pre_vote = true;
  consensus_->HandleMessage(Message(pre));
  auto response = outbox_.Last<VoteResponse>();
  // Leader "b" is fresh: stickiness denies the pre-vote.
  EXPECT_FALSE(response.granted);
  EXPECT_EQ(response.reason, "leader-alive");
  EXPECT_EQ(consensus_->term(), 3u);  // no term churn

  // Once the leader has been silent past the election timeout, the
  // pre-vote is granted — still without touching the term.
  clock_.AdvanceMicros(10'000'000);
  consensus_->HandleMessage(Message(pre));
  response = outbox_.Last<VoteResponse>();
  EXPECT_TRUE(response.granted);
  EXPECT_EQ(consensus_->term(), 3u);
}

TEST_F(ConsensusUnitTest, LeaderCommitsViaMajorityAcks) {
  BecomeLeader();
  auto opid = consensus_->Replicate(EntryType::kNoOp, "payload");
  ASSERT_TRUE(opid.ok());
  EXPECT_FALSE(consensus_->IsCommitted(*opid));

  AppendEntriesResponse ack;
  ack.from = "b";
  ack.dest = "a";
  ack.term = consensus_->term();
  ack.success = true;
  ack.last_received = *opid;
  ack.last_durable_index = opid->index;
  consensus_->HandleMessage(Message(ack));
  EXPECT_TRUE(consensus_->IsCommitted(*opid));  // a + b = 2 of 3
  EXPECT_EQ(listener_.last_commit, *opid);
}

TEST_F(ConsensusUnitTest, LeaderStepsDownOnHigherTermResponse) {
  BecomeLeader();
  AppendEntriesResponse response;
  response.from = "b";
  response.dest = "a";
  response.term = consensus_->term() + 3;
  response.success = false;
  consensus_->HandleMessage(Message(response));
  EXPECT_EQ(consensus_->role(), RaftRole::kFollower);
  EXPECT_EQ(listener_.lost, 1);
  EXPECT_EQ(consensus_->term(), 4u);
  // Replicate is now rejected.
  EXPECT_FALSE(consensus_->Replicate(EntryType::kNoOp, "x").ok());
}

TEST_F(ConsensusUnitTest, LeaderRewindsNextIndexOnFailure) {
  BecomeLeader();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(consensus_->Replicate(EntryType::kNoOp, "e").ok());
  }
  // b claims it is caught up to index 4 (leader advances next to 5)...
  AppendEntriesResponse ack;
  ack.from = "b";
  ack.dest = "a";
  ack.term = consensus_->term();
  ack.success = true;
  ack.last_received = {1, 4};
  consensus_->HandleMessage(Message(ack));
  // ...then fails a subsequent append, hinting its log really ends at 2.
  AppendEntriesResponse nack = ack;
  nack.success = false;
  nack.last_received = {1, 2};
  outbox_.sent.clear();
  consensus_->HandleMessage(Message(nack));
  auto resend = outbox_.Last<AppendEntriesRequest>();
  EXPECT_EQ(resend.prev.index, 2u);  // rewound to the hint
  ASSERT_FALSE(resend.entries.empty());
  EXPECT_EQ(resend.entries.front().id.index, 3u);
}

TEST_F(ConsensusUnitTest, TransferLeadershipValidation) {
  BecomeLeader();
  EXPECT_TRUE(consensus_->TransferLeadership("a").IsInvalidArgument());
  EXPECT_TRUE(consensus_->TransferLeadership("ghost").IsInvalidArgument());
  ASSERT_TRUE(consensus_->TransferLeadership("b").ok());
  EXPECT_TRUE(consensus_->TransferLeadership("c").IsIllegalState());
  EXPECT_EQ(consensus_->transfer_target(), "b");
}

TEST_F(ConsensusUnitTest, QuiescedLeaderRejectsTransactionsOnly) {
  BecomeLeader();
  RaftOptions options;  // mock disabled path goes straight to quiesce
  ASSERT_TRUE(consensus_->TransferLeadership("b").ok());
  // Mock election runs first (enabled by default): not yet quiesced.
  EXPECT_FALSE(consensus_->is_quiesced_for_transfer());
  // Deliver the mock outcome directly.
  VoteResponse outcome;
  outcome.from = "b";
  outcome.dest = "a";
  outcome.term = consensus_->term();
  outcome.granted = true;
  outcome.mock_election = true;
  outcome.reason = "mock-outcome";
  consensus_->HandleMessage(Message(outcome));
  EXPECT_TRUE(consensus_->is_quiesced_for_transfer());
  EXPECT_TRUE(consensus_->Replicate(EntryType::kTransaction, "txn")
                  .status()
                  .IsServiceUnavailable());
  // Control entries (no-op/config) still pass.
  EXPECT_TRUE(consensus_->Replicate(EntryType::kNoOp, "").ok());
}

TEST_F(ConsensusUnitTest, ConfigChangeGatingAndCommit) {
  BecomeLeader();
  MemberInfo member{"d", "r1", MemberKind::kMySql, RaftMemberType::kVoter};
  ASSERT_TRUE(consensus_->AddMember(member).ok());
  EXPECT_TRUE(consensus_->has_pending_config_change());
  EXPECT_TRUE(consensus_->AddMember(MemberInfo{"e", "r1", MemberKind::kMySql,
                                               RaftMemberType::kVoter})
                  .IsIllegalState());
  EXPECT_TRUE(consensus_->config().Contains("d"));  // effective on append

  // Commit the config entry: now 4 voters, majority = 3.
  const OpId config_opid = consensus_->last_logged();
  for (const MemberId& peer : {"b", "c"}) {
    AppendEntriesResponse ack;
    ack.from = peer;
    ack.dest = "a";
    ack.term = consensus_->term();
    ack.success = true;
    ack.last_received = config_opid;
    ack.last_durable_index = config_opid.index;
    consensus_->HandleMessage(Message(ack));
  }
  EXPECT_FALSE(consensus_->has_pending_config_change());
  // The new peer is being replicated to.
  EXPECT_TRUE(consensus_->peers().count("d") > 0);

  // And can be removed again.
  ASSERT_TRUE(consensus_->RemoveMember("d").ok());
  EXPECT_FALSE(consensus_->config().Contains("d"));
}

TEST_F(ConsensusUnitTest, LearnerIgnoresElectionMachinery) {
  // Reconfigure a's type to learner via a fresh instance.
  auto env = NewMemEnv();
  ConsensusMetadataStore store(env.get(), "/m");
  RaftOptions options;
  options.self = "a";
  options.region = "r0";
  CapturingOutbox outbox;
  RecordingListener listener;
  RaftConsensus learner(options, &log_, &quorum_, &store, &clock_, &rng_,
                        &outbox, &listener);
  MembershipConfig config;
  config.members = {
      {"a", "r0", MemberKind::kMySql, RaftMemberType::kNonVoter},
      {"b", "r0", MemberKind::kMySql, RaftMemberType::kVoter},
      {"c", "r1", MemberKind::kMySql, RaftMemberType::kVoter},
  };
  ASSERT_TRUE(learner.Bootstrap(config).ok());
  EXPECT_EQ(learner.role(), RaftRole::kLearner);
  EXPECT_TRUE(
      learner.StartElection(ElectionMode::kRealElection).IsIllegalState());

  VoteRequest request;
  request.candidate = "b";
  request.dest = "a";
  request.term = 1;
  learner.HandleMessage(Message(request));
  auto response = outbox.Last<VoteResponse>();
  EXPECT_FALSE(response.granted);
  EXPECT_EQ(response.reason, "not-a-voter");

  // Election timeouts never fire for learners.
  clock_.AdvanceMicros(60'000'000);
  learner.Tick();
  EXPECT_EQ(learner.stats().elections_started, 0u);
}

TEST_F(ConsensusUnitTest, HeartbeatsFlowOnTick) {
  BecomeLeader();
  // Clear the outstanding-RPC flow control by acking the no-op.
  for (const MemberId& peer : {"b", "c"}) {
    AppendEntriesResponse ack;
    ack.from = peer;
    ack.dest = "a";
    ack.term = consensus_->term();
    ack.success = true;
    ack.last_received = consensus_->last_logged();
    consensus_->HandleMessage(Message(ack));
  }
  outbox_.sent.clear();
  clock_.AdvanceMicros(600'000);  // > 500ms heartbeat interval
  consensus_->Tick();
  auto heartbeats = outbox_.OfType<AppendEntriesRequest>();
  ASSERT_EQ(heartbeats.size(), 2u);  // b and c
  for (const auto& hb : heartbeats) {
    EXPECT_TRUE(hb.IsHeartbeat());
    EXPECT_EQ(hb.term, consensus_->term());
  }
  EXPECT_GE(consensus_->stats().heartbeats_sent, 2u);
}

TEST_F(ConsensusUnitTest, MisaddressedMessagesIgnored) {
  auto request = MakeAppend(1, kZeroOpId, {E(1, 1, "x")});
  request.dest = "someone-else";
  consensus_->HandleMessage(Message(request));
  EXPECT_EQ(consensus_->last_logged(), kZeroOpId);
  EXPECT_TRUE(outbox_.sent.empty());
}

TEST_F(ConsensusUnitTest, AutoStepDownDisabledByDefault) {
  // Faithful to kuduraft: a fully partitioned leader stays leader (§4.1:
  // "we currently choose consistency over availability").
  BecomeLeader();
  clock_.AdvanceMicros(60'000'000);
  consensus_->Tick();
  EXPECT_EQ(consensus_->role(), RaftRole::kLeader);
  EXPECT_EQ(consensus_->stats().auto_step_downs, 0u);
}

TEST(ConsensusAutoStepDownTest, EnabledLeaderDemotesWhenQuorumSilent) {
  ManualClock clock;
  Random rng(2);
  auto env = NewMemEnv();
  ConsensusMetadataStore store(env.get(), "/m");
  MemLog log;
  MajorityQuorumEngine quorum;
  CapturingOutbox outbox;
  RecordingListener listener;
  RaftOptions options;
  options.self = "a";
  options.region = "r0";
  options.enable_pre_vote = false;
  options.enable_auto_step_down = true;
  options.auto_step_down_after_micros = 2'000'000;
  RaftConsensus consensus(options, &log, &quorum, &store, &clock, &rng,
                          &outbox, &listener);
  MembershipConfig config;
  config.members = {
      {"a", "r0", MemberKind::kMySql, RaftMemberType::kVoter},
      {"b", "r0", MemberKind::kMySql, RaftMemberType::kVoter},
      {"c", "r1", MemberKind::kMySql, RaftMemberType::kVoter},
  };
  ASSERT_TRUE(consensus.Bootstrap(config).ok());
  ASSERT_TRUE(consensus.StartElection(ElectionMode::kRealElection).ok());
  VoteResponse grant;
  grant.from = "b";
  grant.dest = "a";
  grant.term = consensus.term();
  grant.granted = true;
  consensus.HandleMessage(Message(grant));
  ASSERT_EQ(consensus.role(), RaftRole::kLeader);

  // A responsive quorum keeps leadership.
  clock.AdvanceMicros(1'500'000);
  AppendEntriesResponse ack;
  ack.from = "b";
  ack.dest = "a";
  ack.term = consensus.term();
  ack.success = true;
  ack.last_received = consensus.last_logged();
  consensus.HandleMessage(Message(ack));
  consensus.Tick();
  EXPECT_EQ(consensus.role(), RaftRole::kLeader);

  // Total silence past the window: demote.
  clock.AdvanceMicros(2'500'000);
  consensus.Tick();
  EXPECT_EQ(consensus.role(), RaftRole::kFollower);
  EXPECT_EQ(consensus.stats().auto_step_downs, 1u);
  EXPECT_EQ(listener.lost, 1);
  EXPECT_EQ(consensus.term(), 1u);  // no gratuitous term bump
}

TEST_F(ConsensusUnitTest, VotesDeniedToRemovedCandidates) {
  // "d" is not in the config (e.g. removed while partitioned); its
  // campaigns must be rejected regardless of log length.
  VoteRequest request;
  request.candidate = "d";
  request.dest = "a";
  request.term = 9;
  request.last_log = {8, 100};
  request.candidate_region = "r1";
  consensus_->HandleMessage(Message(request));
  auto response = outbox_.Last<VoteResponse>();
  EXPECT_FALSE(response.granted);
  EXPECT_EQ(response.reason, "candidate-not-a-voter");
}

TEST_F(ConsensusUnitTest, BootstrapValidation) {
  auto env = NewMemEnv();
  ConsensusMetadataStore store(env.get(), "/m");
  RaftOptions options;
  options.self = "zz";
  options.region = "r0";
  CapturingOutbox outbox;
  RecordingListener listener;
  MemLog log;
  RaftConsensus consensus(options, &log, &quorum_, &store, &clock_, &rng_,
                          &outbox, &listener);
  // Config without self is rejected; Start without bootstrap is too.
  MembershipConfig config;
  config.members = {{"a", "r0", MemberKind::kMySql, RaftMemberType::kVoter}};
  EXPECT_TRUE(consensus.Bootstrap(config).IsInvalidArgument());
  EXPECT_TRUE(consensus.Start().code() == StatusCode::kUninitialized);
}

// --- LeaseGuard leader leases (§13) --------------------------------------

TEST_F(ConsensusUnitTest, LeaseReadsNeedQuorumOfFreshGrants) {
  EnableLeases();
  BecomeLeader();
  AckAll("b", 0);  // commit the leadership no-op, no grant yet
  EXPECT_EQ(listener_.last_commit, consensus_->last_logged());
  EXPECT_FALSE(consensus_->HasValidLease());

  // Skip past the deferred-handoff window, then gather fresh grants:
  // self plus b's echo satisfy the 2-of-3 commit quorum.
  clock_.AdvanceMicros(1'300'001);
  const uint64_t sent = SendStampedHeartbeats();
  EXPECT_FALSE(consensus_->HasValidLease());
  AckAll("b", sent);
  EXPECT_TRUE(consensus_->HasValidLease());

  // Served locally at the commit marker, with zero outbound messages.
  outbox_.sent.clear();
  RaftConsensus::ReadResult read;
  consensus_->LinearizableRead(
      [&](const RaftConsensus::ReadResult& r) { read = r; });
  EXPECT_TRUE(read.status.ok());
  EXPECT_TRUE(read.served_by_lease);
  EXPECT_EQ(read.read_index, consensus_->commit_marker());
  EXPECT_TRUE(outbox_.sent.empty());
  EXPECT_EQ(consensus_->stats().reads_lease, 1u);

  // Grants age out (duration minus drift margin after the stamp); the
  // lease must lapse on its own, bounding any stale window.
  clock_.AdvanceMicros(1'200'000);
  EXPECT_FALSE(consensus_->HasValidLease());
}

TEST_F(ConsensusUnitTest, NewLeaderDefersLeaseServiceThroughHandoffWindow) {
  EnableLeases();
  BecomeLeader();
  AckAll("b", 0);
  // Fresh grants from a commit quorum — but a brand-new leader must
  // first wait out every grant its deposed predecessor could still hold,
  // so the lease stays unusable through the serve-after window.
  const uint64_t sent = SendStampedHeartbeats();
  AckAll("b", sent);
  EXPECT_FALSE(consensus_->HasValidLease());

  // Reads still work: they fall back to a ReadIndex quorum round.
  outbox_.sent.clear();
  bool done = false;
  RaftConsensus::ReadResult read;
  consensus_->LinearizableRead(
      [&](const RaftConsensus::ReadResult& r) { read = r; done = true; });
  EXPECT_FALSE(done);  // awaiting a fresh round of acks
  const auto round = outbox_.Last<AppendEntriesRequest>();
  AckAll("b", round.lease_sent_micros);
  ASSERT_TRUE(done);
  EXPECT_TRUE(read.status.ok());
  EXPECT_FALSE(read.served_by_lease);

  // Once the window has provably drained, the standing grants count.
  clock_.AdvanceMicros(800'000);
  EXPECT_TRUE(consensus_->HasValidLease());
}

TEST_F(ConsensusUnitTest, DeposedLeaseholderRefusesReadsImmediately) {
  EnableLeases();
  BecomeLeader();
  AckAll("b", 0);
  clock_.AdvanceMicros(1'300'001);
  AckAll("b", SendStampedHeartbeats());
  ASSERT_TRUE(consensus_->HasValidLease());

  // A higher-term response deposes us mid-lease: reads must stop at
  // once, long before the grants' wall-clock expiry.
  AppendEntriesResponse higher;
  higher.from = "b";
  higher.dest = "a";
  higher.term = consensus_->term() + 1;
  higher.success = false;
  consensus_->HandleMessage(Message(higher));
  EXPECT_EQ(consensus_->role(), RaftRole::kFollower);
  EXPECT_FALSE(consensus_->HasValidLease());
  RaftConsensus::ReadResult read;
  consensus_->LinearizableRead(
      [&](const RaftConsensus::ReadResult& r) { read = r; });
  EXPECT_TRUE(read.status.IsIllegalState());
}

TEST_F(ConsensusUnitTest, StepDownFailsPendingQuorumReads) {
  BecomeLeader();  // leases off: every read takes the quorum round
  AckAll("b", 0);
  bool done = false;
  Status status;
  consensus_->LinearizableRead(
      [&](const RaftConsensus::ReadResult& r) {
        done = true;
        status = r.status;
      });
  EXPECT_FALSE(done);
  AppendEntriesResponse higher;
  higher.from = "b";
  higher.dest = "a";
  higher.term = consensus_->term() + 1;
  higher.success = false;
  consensus_->HandleMessage(Message(higher));
  ASSERT_TRUE(done);  // failed, not leaked
  EXPECT_FALSE(status.ok());
}

TEST_F(ConsensusUnitTest, ReadIndexIgnoresAcksSentBeforeRegistration) {
  // The echo round only runs with leases on (off, reads use the commit
  // barrier); a fresh leader inside the handoff window falls back to it.
  EnableLeases();
  BecomeLeader();
  AckAll("b", 0);
  clock_.AdvanceMicros(1'000);
  bool done = false;
  RaftConsensus::ReadResult read;
  consensus_->LinearizableRead(
      [&](const RaftConsensus::ReadResult& r) { read = r; done = true; });
  EXPECT_FALSE(done);
  // An ack echoing a send timestamp older than the registration — a
  // response already in flight when the read arrived — proves nothing
  // about current leadership and must not confirm the round.
  AckAll("b", clock_.NowMicros() - 1);
  EXPECT_FALSE(done);
  AckAll("b", clock_.NowMicros());
  ASSERT_TRUE(done);
  EXPECT_TRUE(read.status.ok());
  EXPECT_FALSE(read.served_by_lease);
  EXPECT_EQ(consensus_->stats().reads_quorum, 1u);
}

TEST_F(ConsensusUnitTest, LeasesOffReadsCompleteOnBarrierCommit) {
  BecomeLeader();
  AckAll("b", 0);  // commit the leadership no-op at index 1
  const uint64_t before = consensus_->last_logged().index;
  bool done1 = false, done2 = false;
  RaftConsensus::ReadResult read1, read2;
  consensus_->LinearizableRead(
      [&](const RaftConsensus::ReadResult& r) { read1 = r; done1 = true; });
  consensus_->LinearizableRead(
      [&](const RaftConsensus::ReadResult& r) { read2 = r; done2 = true; });
  // One shared barrier no-op for both reads, not one each.
  EXPECT_EQ(consensus_->last_logged().index, before + 1);
  EXPECT_FALSE(done1);
  EXPECT_FALSE(done2);
  // A pre-lease ack (no echo) commits the barrier; both reads complete
  // at the marker captured when they registered.
  AckAll("b", 0);
  ASSERT_TRUE(done1);
  ASSERT_TRUE(done2);
  EXPECT_TRUE(read1.status.ok());
  EXPECT_FALSE(read1.served_by_lease);
  EXPECT_EQ(read1.read_index.index, before);
  EXPECT_TRUE(read2.status.ok());
  EXPECT_EQ(consensus_->stats().reads_quorum, 2u);
}

TEST_F(ConsensusUnitTest, LeasesOffAppendsCarryNoLeaseFields) {
  // Wire compatibility (§13.6): with leases off the leader must emit the
  // pre-lease byte format — a pre-lease decoder rejects trailing fields.
  BecomeLeader();
  AckAll("b", 0);  // drain the no-op batch so the tick heartbeats
  clock_.AdvanceMicros(600'000);
  outbox_.sent.clear();
  consensus_->Tick();
  const auto request = outbox_.Last<AppendEntriesRequest>();
  EXPECT_EQ(request.lease_sent_micros, 0u);
  EXPECT_EQ(request.lease_duration_micros, 0u);
}

TEST_F(ConsensusUnitTest, PendingReadsFailAfterDeadline) {
  BecomeLeader();
  AckAll("b", 0);
  bool done = false;
  RaftConsensus::ReadResult read;
  consensus_->LinearizableRead(
      [&](const RaftConsensus::ReadResult& r) { read = r; done = true; });
  EXPECT_FALSE(done);
  // Quorum never answers (leader partitioned, auto step down off): the
  // callback must not be parked forever.
  clock_.AdvanceMicros(2'400'000);  // < rpc timeout + election timeout
  consensus_->Tick();
  EXPECT_FALSE(done);
  clock_.AdvanceMicros(200'000);  // past the deadline
  consensus_->Tick();
  ASSERT_TRUE(done);
  EXPECT_TRUE(read.status.IsTimedOut());
  EXPECT_EQ(consensus_->stats().reads_timed_out, 1u);
}

TEST_F(ConsensusUnitTest, LeasesRequirePreVote) {
  RaftOptions options;
  options.self = "a";
  options.region = "r0";
  options.enable_pre_vote = false;
  options.enable_leader_leases = true;
  auto store =
      std::make_unique<ConsensusMetadataStore>(env_.get(), "/cmeta-nopv");
  RaftConsensus bad(options, &faulty_log_, &quorum_, store.get(), &clock_,
                    &rng_, &outbox_, &listener_);
  MembershipConfig config;
  config.members = {
      {"a", "r0", MemberKind::kMySql, RaftMemberType::kVoter},
  };
  // Lease safety rests on pre-vote stickiness; the combination must be
  // rejected at startup, not silently weakened.
  EXPECT_TRUE(bad.Bootstrap(config).IsInvalidArgument());
}

TEST_F(ConsensusUnitTest, RestartEmbargoesVotesThroughGrantWindow) {
  EnableLeases();
  BecomeLeader();  // persists term 1; this node may have echoed a grant
  AckAll("b", 0);

  // Crash-restart on the same durable state: the grant promise lived in
  // volatile memory, so the voter must refuse to depose anyone until the
  // longest grant it could have made has expired.
  RaftOptions options;
  options.self = "a";
  options.region = "r0";
  options.enable_pre_vote = true;
  options.enable_leader_leases = true;
  options.lease_duration_micros = 1'200'000;
  options.lease_drift_margin_micros = 100'000;
  RaftConsensus restarted(options, &faulty_log_, &quorum_,
                          lease_meta_store_.get(), &clock_, &rng_, &outbox_,
                          &listener_);
  ASSERT_TRUE(restarted.Start().ok());
  outbox_.sent.clear();

  VoteRequest pre;
  pre.candidate = "c";
  pre.dest = "a";
  pre.term = restarted.term() + 1;
  pre.last_log = restarted.last_logged();
  pre.candidate_region = "r1";
  pre.pre_vote = true;
  restarted.HandleMessage(Message(pre));
  auto response = outbox_.Last<VoteResponse>();
  EXPECT_FALSE(response.granted);
  EXPECT_EQ(response.reason, "startup-lease-embargo");

  VoteRequest binding = pre;
  binding.pre_vote = false;
  restarted.HandleMessage(Message(binding));
  response = outbox_.Last<VoteResponse>();
  EXPECT_FALSE(response.granted);
  EXPECT_EQ(response.reason, "startup-lease-embargo");

  // Once duration + margin has passed, every possible grant has expired
  // and normal vote rules resume.
  clock_.AdvanceMicros(1'300'001);
  restarted.HandleMessage(Message(pre));
  response = outbox_.Last<VoteResponse>();
  EXPECT_TRUE(response.granted);
  restarted.HandleMessage(Message(binding));
  response = outbox_.Last<VoteResponse>();
  EXPECT_TRUE(response.granted);
}

TEST_F(ConsensusUnitTest, FirstBootSkipsVoteEmbargo) {
  // A freshly bootstrapped voter (term 0, empty log) can never have
  // granted a lease — an echo requires leader contact, which persists a
  // term bump first. No embargo, or every new cluster would stall.
  EnableLeases();
  VoteRequest request;
  request.candidate = "b";
  request.dest = "a";
  request.term = 1;
  request.last_log = kZeroOpId;
  request.candidate_region = "r0";
  consensus_->HandleMessage(Message(request));
  auto response = outbox_.Last<VoteResponse>();
  EXPECT_TRUE(response.granted);
}

TEST_F(ConsensusUnitTest, LeadershipTransferRevokesLease) {
  EnableLeases();
  BecomeLeader();
  AckAll("b", 0);
  clock_.AdvanceMicros(1'300'001);
  const uint64_t sent = SendStampedHeartbeats();
  AckAll("b", sent);
  ASSERT_TRUE(consensus_->HasValidLease());

  ASSERT_TRUE(consensus_->TransferLeadership("b").ok());
  VoteResponse outcome;  // mock election passes
  outcome.from = "b";
  outcome.dest = "a";
  outcome.term = consensus_->term();
  outcome.granted = true;
  outcome.mock_election = true;
  outcome.reason = "mock-outcome";
  consensus_->HandleMessage(Message(outcome));
  ASSERT_TRUE(consensus_->is_quiesced_for_transfer());
  // The caught-up target triggers TimeoutNow; every grant is revoked
  // first so this (still unaware, not yet deposed) leaseholder can never
  // serve a lease read racing its successor's election.
  AckAll("b", clock_.NowMicros());
  EXPECT_FALSE(outbox_.OfType<StartElectionRequest>().empty());
  EXPECT_FALSE(consensus_->HasValidLease());
}

}  // namespace
}  // namespace myraft::raft

#include "binlog/gtid.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace myraft::binlog {
namespace {

Uuid U(uint64_t i) { return Uuid::FromIndex(i); }

TEST(GtidTest, ParseFormatRoundTrip) {
  const Gtid gtid{U(1), 42};
  auto parsed = Gtid::Parse(gtid.ToString());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, gtid);
}

TEST(GtidTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Gtid::Parse("no-colon").ok());
  EXPECT_FALSE(Gtid::Parse(U(1).ToString() + ":0").ok());
  EXPECT_FALSE(Gtid::Parse(U(1).ToString() + ":abc").ok());
  EXPECT_FALSE(Gtid::Parse("bad-uuid:5").ok());
}

TEST(GtidSetTest, AddAndContains) {
  GtidSet set;
  set.Add({U(1), 5});
  EXPECT_TRUE(set.Contains({U(1), 5}));
  EXPECT_FALSE(set.Contains({U(1), 4}));
  EXPECT_FALSE(set.Contains({U(2), 5}));
  EXPECT_EQ(set.Count(), 1u);
}

TEST(GtidSetTest, AdjacentRunsMerge) {
  GtidSet set;
  set.AddRange(U(1), 1, 3);
  set.AddRange(U(1), 4, 6);  // adjacent
  ASSERT_EQ(set.intervals().at(U(1)).size(), 1u);
  EXPECT_EQ(set.ToString(), U(1).ToString() + ":1-6");
}

TEST(GtidSetTest, OverlappingRunsMerge) {
  GtidSet set;
  set.AddRange(U(1), 1, 10);
  set.AddRange(U(1), 5, 20);
  set.AddRange(U(1), 30, 40);
  ASSERT_EQ(set.intervals().at(U(1)).size(), 2u);
  EXPECT_EQ(set.Count(), 31u);
}

TEST(GtidSetTest, OutOfOrderInsertKeepsSorted) {
  GtidSet set;
  set.Add({U(1), 9});
  set.Add({U(1), 3});
  set.Add({U(1), 6});
  const auto& runs = set.intervals().at(U(1));
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].start, 3u);
  EXPECT_EQ(runs[1].start, 6u);
  EXPECT_EQ(runs[2].start, 9u);
}

TEST(GtidSetTest, UnionCombines) {
  GtidSet a, b;
  a.AddRange(U(1), 1, 5);
  b.AddRange(U(1), 4, 8);
  b.AddRange(U(2), 1, 1);
  a.Union(b);
  EXPECT_TRUE(a.Contains({U(1), 8}));
  EXPECT_TRUE(a.Contains({U(2), 1}));
  EXPECT_EQ(a.Count(), 9u);
}

TEST(GtidSetTest, SubtractSplitsRuns) {
  GtidSet a, b;
  a.AddRange(U(1), 1, 10);
  b.AddRange(U(1), 4, 6);
  a.Subtract(b);
  EXPECT_EQ(a.ToString(), U(1).ToString() + ":1-3:7-10");
  EXPECT_EQ(a.Count(), 7u);
}

TEST(GtidSetTest, SubtractWholeUuidRemovesKey) {
  GtidSet a, b;
  a.AddRange(U(1), 1, 3);
  b.AddRange(U(1), 1, 3);
  a.Subtract(b);
  EXPECT_TRUE(a.IsEmpty());
}

TEST(GtidSetTest, SubtractDisjointIsNoOp) {
  GtidSet a, b;
  a.AddRange(U(1), 1, 3);
  b.AddRange(U(1), 10, 12);
  b.AddRange(U(2), 1, 5);
  a.Subtract(b);
  EXPECT_EQ(a.Count(), 3u);
}

TEST(GtidSetTest, ContainsAll) {
  GtidSet a, b;
  a.AddRange(U(1), 1, 10);
  a.AddRange(U(2), 5, 5);
  b.AddRange(U(1), 2, 4);
  EXPECT_TRUE(a.ContainsAll(b));
  b.AddRange(U(2), 5, 6);
  EXPECT_FALSE(a.ContainsAll(b));
  EXPECT_TRUE(a.ContainsAll(GtidSet()));
}

TEST(GtidSetTest, Intersects) {
  GtidSet a, b;
  a.AddRange(U(1), 1, 5);
  b.AddRange(U(1), 5, 9);
  EXPECT_TRUE(a.Intersects(b));
  GtidSet c;
  c.AddRange(U(1), 6, 9);
  EXPECT_FALSE(a.Intersects(c));
}

TEST(GtidSetTest, NextTxnNo) {
  GtidSet set;
  EXPECT_EQ(set.NextTxnNo(U(1)), 1u);
  set.AddRange(U(1), 1, 7);
  EXPECT_EQ(set.NextTxnNo(U(1)), 8u);
  EXPECT_EQ(set.NextTxnNo(U(2)), 1u);
}

TEST(GtidSetTest, TextRoundTrip) {
  GtidSet set;
  set.AddRange(U(1), 1, 5);
  set.AddRange(U(1), 7, 7);
  set.AddRange(U(2), 100, 200);
  auto parsed = GtidSet::Parse(set.ToString());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, set);
  // Empty set round-trips too.
  auto empty = GtidSet::Parse("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->IsEmpty());
}

TEST(GtidSetTest, ParseRejectsMalformed) {
  EXPECT_FALSE(GtidSet::Parse("garbage").ok());
  EXPECT_FALSE(GtidSet::Parse(U(1).ToString()).ok());          // no interval
  EXPECT_FALSE(GtidSet::Parse(U(1).ToString() + ":5-3").ok()); // inverted
  EXPECT_FALSE(GtidSet::Parse(U(1).ToString() + ":0").ok());   // zero
  EXPECT_FALSE(GtidSet::Parse(U(1).ToString() + ":1-2-3").ok());
}

TEST(GtidSetTest, BinaryRoundTrip) {
  GtidSet set;
  set.AddRange(U(1), 1, 1000000);
  set.AddRange(U(2), 3, 3);
  set.AddRange(U(3), 10, 20);
  std::string buf;
  set.EncodeTo(&buf);
  auto decoded = GtidSet::Decode(buf);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, set);
}

TEST(GtidSetTest, BinaryDecodeRejectsTruncation) {
  GtidSet set;
  set.AddRange(U(1), 1, 5);
  std::string buf;
  set.EncodeTo(&buf);
  for (size_t len = 1; len < buf.size(); ++len) {
    EXPECT_FALSE(GtidSet::Decode(Slice(buf.data(), len)).ok()) << len;
  }
}

// Property test: set algebra invariants under random operations.
class GtidSetPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GtidSetPropertyTest, AlgebraInvariants) {
  Random rng(GetParam());
  GtidSet a, b;
  for (int i = 0; i < 200; ++i) {
    const Uuid uuid = U(rng.Uniform(4));
    const uint64_t start = 1 + rng.Uniform(500);
    const uint64_t end = start + rng.Uniform(20);
    (rng.OneIn(2) ? a : b).AddRange(uuid, start, end);
  }

  // (a ∪ b) ⊇ a and ⊇ b.
  GtidSet u = a;
  u.Union(b);
  EXPECT_TRUE(u.ContainsAll(a));
  EXPECT_TRUE(u.ContainsAll(b));
  EXPECT_LE(u.Count(), a.Count() + b.Count());

  // (a − b) ∩ b = ∅ and (a − b) ∪ (a ∩ b-part) stays within a.
  GtidSet diff = a;
  diff.Subtract(b);
  EXPECT_FALSE(diff.Intersects(b));
  EXPECT_TRUE(a.ContainsAll(diff));

  // Subtract then re-add restores a.
  GtidSet restored = diff;
  GtidSet a_and_b = a;
  a_and_b.Subtract(diff);  // = a ∩ b
  restored.Union(a_and_b);
  EXPECT_EQ(restored, a);

  // Text round-trip is lossless.
  auto parsed = GtidSet::Parse(u.ToString());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, u);

  // Binary round-trip is lossless.
  std::string buf;
  diff.EncodeTo(&buf);
  auto decoded = GtidSet::Decode(buf);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, diff);

  // Intervals stay canonical: sorted, disjoint, non-adjacent.
  for (const auto& [uuid, runs] : u.intervals()) {
    for (size_t i = 0; i < runs.size(); ++i) {
      EXPECT_LE(runs[i].start, runs[i].end);
      if (i > 0) EXPECT_GT(runs[i].start, runs[i - 1].end + 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GtidSetPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 23, 47));

}  // namespace
}  // namespace myraft::binlog

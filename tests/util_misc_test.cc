// Tests for Status/Result, Slice, CRC32C, Random, UUID and string helpers.

#include <gtest/gtest.h>

#include "util/crc32c.h"
#include "util/histogram.h"
#include "util/random.h"
#include "util/result.h"
#include "util/slice.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/uuid.h"

namespace myraft {
namespace {

TEST(StatusTest, OkIsDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Corruption("bad checksum");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_EQ(s.message(), "bad checksum");
  EXPECT_EQ(s.ToString(), "Corruption: bad checksum");
}

TEST(StatusTest, CopyPreservesContents) {
  Status s = Status::NotFound("x");
  Status t = s;
  EXPECT_TRUE(t.IsNotFound());
  EXPECT_EQ(t.message(), "x");
  EXPECT_EQ(s, t);
}

TEST(StatusTest, WithPrefix) {
  Status s = Status::IoError("disk full").WithPrefix("writing binlog");
  EXPECT_EQ(s.ToString(), "IOError: writing binlog: disk full");
  EXPECT_TRUE(Status::OK().WithPrefix("p").ok());
}

Status Fails() { return Status::Aborted("inner"); }
Status Propagates() {
  MYRAFT_RETURN_NOT_OK(Fails());
  return Status::OK();
}
Status PropagatesWithPrefix() {
  MYRAFT_RETURN_NOT_OK_PREPEND(Fails(), "outer");
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacros) {
  EXPECT_TRUE(Propagates().IsAborted());
  EXPECT_EQ(PropagatesWithPrefix().ToString(), "Aborted: outer: inner");
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> Doubled(int x) {
  int v;
  MYRAFT_ASSIGN_OR_RETURN(v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, ValueAndError) {
  auto ok = ParsePositive(5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5);
  auto err = ParsePositive(-1);
  EXPECT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsInvalidArgument());
  EXPECT_EQ(err.ValueOr(42), 42);
}

TEST(ResultTest, AssignOrReturn) {
  EXPECT_EQ(*Doubled(4), 8);
  EXPECT_FALSE(Doubled(0).ok());
}

TEST(SliceTest, Basics) {
  Slice s("hello");
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s[1], 'e');
  s.RemovePrefix(2);
  EXPECT_EQ(s.ToString(), "llo");
  EXPECT_TRUE(Slice("abc") == Slice("abc"));
  EXPECT_TRUE(Slice("abc") != Slice("abd"));
  EXPECT_LT(Slice("abc").Compare(Slice("abd")), 0);
  EXPECT_LT(Slice("ab").Compare(Slice("abc")), 0);
  EXPECT_TRUE(Slice("abcdef").StartsWith("abc"));
  EXPECT_FALSE(Slice("ab").StartsWith("abc"));
}

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 test vectors for CRC32C.
  char zeros[32];
  memset(zeros, 0, sizeof(zeros));
  EXPECT_EQ(crc32c::Value(zeros, sizeof(zeros)), 0x8a9136aaU);

  char ones[32];
  memset(ones, 0xff, sizeof(ones));
  EXPECT_EQ(crc32c::Value(ones, sizeof(ones)), 0x62a8ab43U);

  char ascending[32];
  for (int i = 0; i < 32; ++i) ascending[i] = static_cast<char>(i);
  EXPECT_EQ(crc32c::Value(ascending, sizeof(ascending)), 0x46dd794eU);
}

TEST(Crc32cTest, ExtendEqualsWhole) {
  const std::string data = "hello world, this is crc32c";
  const uint32_t whole = crc32c::Value(data.data(), data.size());
  uint32_t partial = crc32c::Value(data.data(), 10);
  partial = crc32c::Extend(partial, data.data() + 10, data.size() - 10);
  EXPECT_EQ(whole, partial);
}

TEST(Crc32cTest, MaskRoundTrip) {
  const uint32_t crc = crc32c::Value("foo", 3);
  EXPECT_NE(crc, crc32c::Mask(crc));
  EXPECT_EQ(crc, crc32c::Unmask(crc32c::Mask(crc)));
}

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, UniformStaysInRange) {
  Random rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    const uint64_t v = rng.UniformRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, ExponentialMeanApproximatelyCorrect) {
  Random rng(99);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(100.0);
  const double mean = sum / n;
  EXPECT_NEAR(mean, 100.0, 5.0);
}

TEST(UuidTest, GenerateParseRoundTrip) {
  Random rng(3);
  for (int i = 0; i < 20; ++i) {
    const Uuid u = Uuid::Generate(&rng);
    EXPECT_FALSE(u.IsNil());
    auto parsed = Uuid::Parse(u.ToString());
    ASSERT_TRUE(parsed.ok()) << u.ToString();
    EXPECT_EQ(*parsed, u);
  }
}

TEST(UuidTest, FromIndexIsStableAndDistinct) {
  EXPECT_EQ(Uuid::FromIndex(1), Uuid::FromIndex(1));
  EXPECT_NE(Uuid::FromIndex(1), Uuid::FromIndex(2));
  EXPECT_EQ(Uuid::FromIndex(7).ToString(),
            Uuid::FromIndex(7).ToString());
}

TEST(UuidTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Uuid::Parse("").ok());
  EXPECT_FALSE(Uuid::Parse("not-a-uuid").ok());
  EXPECT_FALSE(
      Uuid::Parse("zzzzzzzz-0000-0000-0000-000000000000").ok());
  EXPECT_FALSE(
      Uuid::Parse("abcd0123-0000+0000-0000-000000000000").ok());
}

TEST(StringUtilTest, Printf) {
  EXPECT_EQ(StringPrintf("%d-%s", 42, "x"), "42-x");
  const std::string big(1000, 'a');
  EXPECT_EQ(StringPrintf("%s", big.c_str()).size(), 1000u);
}

TEST(StringUtilTest, SplitJoin) {
  auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(JoinStrings(parts, ","), "a,b,,c");
  EXPECT_EQ(SplitString("", ',').size(), 1u);
}

TEST(StringUtilTest, PrefixSuffix) {
  EXPECT_TRUE(HasPrefix("binlog.000001", "binlog."));
  EXPECT_FALSE(HasPrefix("bin", "binlog"));
  EXPECT_TRUE(HasSuffix("file.idx", ".idx"));
  EXPECT_FALSE(HasSuffix("idx", "file.idx"));
}

TEST(StringUtilTest, ParseUint64) {
  uint64_t v;
  EXPECT_TRUE(ParseUint64("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(ParseUint64("18446744073709551615", &v));
  EXPECT_EQ(v, UINT64_MAX);
  EXPECT_FALSE(ParseUint64("18446744073709551616", &v));  // overflow
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("12a", &v));
  EXPECT_FALSE(ParseUint64("-1", &v));
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Add(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_NEAR(h.Mean(), 50.5, 0.01);
  EXPECT_NEAR(h.Median(), 50.0, 5.0);
  EXPECT_NEAR(h.Percentile(99), 99.0, 7.0);
}

TEST(HistogramTest, PercentileWithinRelativeError) {
  Histogram h;
  Random rng(5);
  std::vector<uint64_t> values;
  for (int i = 0; i < 100000; ++i) {
    const uint64_t v = 1 + (rng.Next() % 1000000);
    values.push_back(v);
    h.Add(v);
  }
  std::sort(values.begin(), values.end());
  for (double p : {50.0, 90.0, 99.0}) {
    const uint64_t exact = values[static_cast<size_t>(p / 100 * values.size()) - 1];
    const double est = h.Percentile(p);
    EXPECT_NEAR(est, static_cast<double>(exact), 0.08 * exact) << "p" << p;
  }
}

TEST(HistogramTest, MergeEqualsCombined) {
  Histogram a, b, combined;
  Random rng(8);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Uniform(10000);
    if (i % 2 == 0) a.Add(v); else b.Add(v);
    combined.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_DOUBLE_EQ(a.Mean(), combined.Mean());
  EXPECT_DOUBLE_EQ(a.Percentile(95), combined.Percentile(95));
}

TEST(HistogramTest, EmptyIsSafe) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(99), 0.0);
  EXPECT_EQ(h.Mean(), 0.0);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
}

}  // namespace
}  // namespace myraft

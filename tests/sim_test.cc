// Simulator substrate tests: event-loop ordering/cancellation, network
// latency/fault/accounting behaviour, and the downtime probe.

#include <gtest/gtest.h>

#include "sim/downtime_probe.h"
#include "sim/event_loop.h"
#include "sim/network.h"

namespace myraft::sim {
namespace {

TEST(EventLoopTest, RunsEventsInTimeOrder) {
  EventLoop loop(1);
  std::vector<int> order;
  loop.Schedule(300, [&]() { order.push_back(3); });
  loop.Schedule(100, [&]() { order.push_back(1); });
  loop.Schedule(200, [&]() { order.push_back(2); });
  loop.RunUntil(1'000);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 1'000u);
}

TEST(EventLoopTest, EqualTimesRunInScheduleOrder) {
  EventLoop loop(1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.Schedule(50, [&order, i]() { order.push_back(i); });
  }
  loop.RunFor(100);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventLoopTest, NestedSchedulingAdvancesClock) {
  EventLoop loop(1);
  std::vector<uint64_t> times;
  std::function<void(int)> chain = [&](int remaining) {
    times.push_back(loop.now());
    if (remaining > 0) {
      loop.Schedule(10, [&, remaining]() { chain(remaining - 1); });
    }
  };
  loop.Schedule(0, [&]() { chain(4); });
  loop.RunUntil(1'000);
  EXPECT_EQ(times, (std::vector<uint64_t>{0, 10, 20, 30, 40}));
}

TEST(EventLoopTest, CancelPreventsExecution) {
  EventLoop loop(1);
  bool ran = false;
  const uint64_t id = loop.Schedule(100, [&]() { ran = true; });
  loop.Cancel(id);
  loop.RunFor(1'000);
  EXPECT_FALSE(ran);
}

TEST(EventLoopTest, RunUntilStopsBeforeLaterEvents) {
  EventLoop loop(1);
  bool early = false, late = false;
  loop.Schedule(100, [&]() { early = true; });
  loop.Schedule(900, [&]() { late = true; });
  loop.RunUntil(500);
  EXPECT_TRUE(early);
  EXPECT_FALSE(late);
  EXPECT_EQ(loop.now(), 500u);
  loop.RunUntil(1'000);
  EXPECT_TRUE(late);
}

TEST(EventLoopTest, DeterministicForSameSeed) {
  auto run = [](uint64_t seed) {
    EventLoop loop(seed);
    std::vector<uint64_t> samples;
    for (int i = 0; i < 10; ++i) samples.push_back(loop.rng()->Next());
    return samples;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

Message MakeHeartbeat(const MemberId& from, const MemberId& to) {
  AppendEntriesRequest request;
  request.leader = from;
  request.dest = to;
  request.term = 1;
  return request;
}

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : loop_(7), network_(&loop_, NetworkOptions{}) {
    for (const auto& [id, region] :
         std::vector<std::pair<MemberId, RegionId>>{
             {"a", "r0"}, {"b", "r0"}, {"c", "r1"}}) {
      network_.RegisterNode(id, region,
                            [this, id = id](const MemberId& from,
                                            const Message& m) {
                              deliveries_.push_back({id, from});
                            });
    }
  }

  EventLoop loop_;
  SimNetwork network_;
  std::vector<std::pair<MemberId, MemberId>> deliveries_;  // (to, from)
};

TEST_F(NetworkTest, SameRegionFasterThanCrossRegion) {
  network_.Send("a", MakeHeartbeat("a", "b"));
  loop_.RunFor(1'000);  // same-region: 150-250us
  ASSERT_EQ(deliveries_.size(), 1u);
  deliveries_.clear();

  network_.Send("a", MakeHeartbeat("a", "c"));
  loop_.RunFor(1'000);
  EXPECT_TRUE(deliveries_.empty());  // cross-region: ~15ms
  loop_.RunFor(20'000);
  EXPECT_EQ(deliveries_.size(), 1u);
}

TEST_F(NetworkTest, DownNodesAndCutLinksDrop) {
  network_.SetNodeUp("b", false);
  network_.Send("a", MakeHeartbeat("a", "b"));
  loop_.RunFor(10'000);
  EXPECT_TRUE(deliveries_.empty());
  EXPECT_EQ(network_.dropped_messages(), 1u);

  network_.SetNodeUp("b", true);
  network_.SetLinkCut("a", "b", true);
  network_.Send("a", MakeHeartbeat("a", "b"));
  loop_.RunFor(10'000);
  EXPECT_TRUE(deliveries_.empty());

  network_.SetLinkCut("a", "b", false);
  network_.Send("a", MakeHeartbeat("a", "b"));
  loop_.RunFor(10'000);
  EXPECT_EQ(deliveries_.size(), 1u);
}

TEST_F(NetworkTest, RegionPartitionCutsOnlyCrossRegion) {
  network_.SetRegionPartitioned("r1", true);
  network_.Send("a", MakeHeartbeat("a", "b"));  // within r0: fine
  network_.Send("a", MakeHeartbeat("a", "c"));  // into r1: dropped
  loop_.RunFor(50'000);
  ASSERT_EQ(deliveries_.size(), 1u);
  EXPECT_EQ(deliveries_[0].first, "b");
}

TEST_F(NetworkTest, CrashMidFlightDropsAtDelivery) {
  network_.Send("a", MakeHeartbeat("a", "c"));  // ~15ms in flight
  loop_.RunFor(1'000);
  network_.SetNodeUp("c", false);  // crashes while the message flies
  loop_.RunFor(30'000);
  EXPECT_TRUE(deliveries_.empty());
}

TEST_F(NetworkTest, ByteAccountingPerRegionAndMember) {
  network_.Send("a", MakeHeartbeat("a", "c"));
  network_.Send("a", MakeHeartbeat("a", "b"));
  loop_.RunFor(30'000);
  EXPECT_GT(network_.CrossRegionBytes(), 0u);
  EXPECT_GT(network_.TotalBytes(), network_.CrossRegionBytes());
  const auto& member_stats = network_.member_link_stats();
  EXPECT_EQ(member_stats.at({"a", "c"}).messages, 1u);
  EXPECT_EQ(member_stats.at({"a", "b"}).messages, 1u);
  network_.ResetStats();
  EXPECT_EQ(network_.TotalBytes(), 0u);
}

TEST_F(NetworkTest, ReplicationLagDelaysOnlyDataAppends) {
  network_.SetNodeReplicationLag("b", 500'000);
  // Heartbeat (no entries): fast.
  network_.Send("a", MakeHeartbeat("a", "b"));
  loop_.RunFor(5'000);
  EXPECT_EQ(deliveries_.size(), 1u);
  deliveries_.clear();
  // Data-carrying append: +500ms.
  AppendEntriesRequest data;
  data.leader = "a";
  data.dest = "b";
  data.term = 1;
  data.entries.push_back(LogEntry::Make({1, 1}, EntryType::kNoOp, "x"));
  network_.Send("a", Message(data));
  loop_.RunFor(100'000);
  EXPECT_TRUE(deliveries_.empty());
  loop_.RunFor(500'000);
  EXPECT_EQ(deliveries_.size(), 1u);
}

TEST_F(NetworkTest, RoutedMessageDeliversToNextHop) {
  AppendEntriesRequest routed;
  routed.leader = "a";
  routed.dest = "c";
  routed.route = {"b"};
  routed.term = 1;
  network_.Send("a", Message(routed));
  loop_.RunFor(5'000);  // in-region to the relay, not cross-region
  ASSERT_EQ(deliveries_.size(), 1u);
  EXPECT_EQ(deliveries_[0].first, "b");
  EXPECT_EQ(deliveries_[0].second, "a");
}

TEST(DowntimeProbeTest, MeasuresLongestOutageWindow) {
  EventLoop loop(3);
  // Writes fail between t=100ms and t=400ms.
  bool down = false;
  loop.Schedule(100'000, [&]() { down = true; });
  loop.Schedule(400'000, [&]() { down = false; });

  DowntimeProbe::Options options;
  options.probe_interval_micros = 10'000;
  options.timeout_micros = 2'000'000;
  auto result = DowntimeProbe::Measure(
      &loop,
      [&loop, &down](const std::string&, std::function<void(bool)> report) {
        const bool ok = !down;
        loop.Schedule(1'000, [report, ok]() { report(ok); });
      },
      []() {}, []() { return true; }, options);

  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.saw_outage);
  EXPECT_EQ(result.outages, 1);
  EXPECT_NEAR(static_cast<double>(result.downtime_micros), 300'000.0,
              30'000.0);
}

TEST(DowntimeProbeTest, NoOutageReportsZeroWhenNotExpected) {
  EventLoop loop(4);
  DowntimeProbe::Options options;
  options.probe_interval_micros = 10'000;
  options.timeout_micros = 500'000;
  options.expect_outage = false;
  auto result = DowntimeProbe::Measure(
      &loop,
      [&loop](const std::string&, std::function<void(bool)> report) {
        loop.Schedule(1'000, [report]() { report(true); });
      },
      []() {}, []() { return true; }, options);
  EXPECT_TRUE(result.completed);
  EXPECT_FALSE(result.saw_outage);
  EXPECT_EQ(result.downtime_micros, 0u);
}

}  // namespace
}  // namespace myraft::sim

// Full-stack torture test: random crash/restart/partition/transfer
// schedules against the complete server (engine + binlog + raft + proxy)
// under client load, auditing the invariants that define the system:
//
//  I1  no acknowledged write is ever lost (client OK => durable);
//  I2  engines at the same applied OpId have identical state checksums;
//  I3  after healing, the ring elects a primary and serves writes;
//  I4  every database converges to the same executed GTID set.

#include <gtest/gtest.h>

#include <set>

#include "flexiraft/flexiraft.h"
#include "sim/cluster.h"

namespace myraft::server {
namespace {

using sim::ClusterHarness;
using sim::ClusterOptions;
constexpr uint64_t kSecond = 1'000'000;

const raft::QuorumEngine* FlexiEngine() {
  static auto* engine = new flexiraft::FlexiRaftQuorumEngine(
      {flexiraft::QuorumMode::kSingleRegionDynamic});
  return engine;
}

class ServerTortureTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ServerTortureTest, InvariantsHoldUnderRandomFaults) {
  ClusterOptions options;
  options.seed = GetParam();
  options.topology.db_regions = 3;
  options.topology.logtailers_per_db = 2;
  options.topology.learners = 1;
  ClusterHarness cluster(options, FlexiEngine());
  ASSERT_TRUE(cluster.Bootstrap().ok());
  ASSERT_FALSE(cluster.WaitForPrimary(60 * kSecond).empty());

  Random rng(GetParam() * 7919);
  std::map<std::string, std::string> acked;  // I1 ledger (last acked value)
  // Writes that failed from the client's view may still commit later
  // ("outcome unknown" on demotion/timeout, §A.2 case 3), so the durable
  // value only has to be one of the values ever issued for the key.
  std::map<std::string, std::set<std::string>> issued;
  uint64_t writes_issued = 0, writes_acked = 0;
  std::vector<MemberId> crashed;

  // Background client: a write every ~20ms of simulated time.
  std::function<void()> pump = [&]() {
    cluster.loop()->Schedule(
        10'000 + rng.Uniform(20'000), [&]() {
          const std::string key =
              "t" + std::to_string(rng.Next() % 50'000);
          const std::string value = "v" + std::to_string(writes_issued);
          ++writes_issued;
          issued[key].insert(value);
          cluster.ClientWrite(
              key, value,
              [&acked, &writes_acked, key, value](
                  const ClusterHarness::ClientWriteResult& r) {
                if (r.status.ok()) {
                  acked[key] = value;
                  ++writes_acked;
                }
              });
          pump();
        });
  };
  pump();

  const auto ids = cluster.ids();
  for (int round = 0; round < 25; ++round) {
    const int action = static_cast<int>(rng.Uniform(6));
    switch (action) {
      case 0: {  // crash someone (keep a majority of regions alive)
        if (crashed.size() >= 3) break;
        const MemberId victim = ids[rng.Uniform(ids.size())];
        if (cluster.node(victim)->up()) {
          cluster.Crash(victim);
          crashed.push_back(victim);
        }
        break;
      }
      case 1: {  // restart a crashed member
        if (crashed.empty()) break;
        const size_t pick = rng.Uniform(crashed.size());
        const MemberId back = crashed[pick];
        crashed.erase(crashed.begin() + static_cast<long>(pick));
        ASSERT_TRUE(cluster.Restart(back).ok()) << back;
        break;
      }
      case 2: {  // cut or heal a random link
        const MemberId a = ids[rng.Uniform(ids.size())];
        const MemberId b = ids[rng.Uniform(ids.size())];
        if (a != b) cluster.network()->SetLinkCut(a, b, rng.OneIn(2));
        break;
      }
      case 3: {  // graceful transfer attempt
        const MemberId primary = cluster.CurrentPrimary();
        if (primary.empty()) break;
        std::vector<MemberId> targets;
        for (const MemberId& id : cluster.database_ids()) {
          if (id != primary && cluster.node(id)->up()) targets.push_back(id);
        }
        if (targets.empty()) break;
        (void)cluster.node(primary)->server()->TransferLeadership(
            targets[rng.Uniform(targets.size())]);
        break;
      }
      case 4: {  // message loss burst
        cluster.network()->SetLossRate(rng.OneIn(2) ? 0.05 : 0.0);
        break;
      }
      case 5: {  // replicated rotation on the primary
        const MemberId primary = cluster.CurrentPrimary();
        if (!primary.empty()) {
          (void)cluster.node(primary)->server()->FlushBinaryLogs();
        }
        break;
      }
    }
    cluster.loop()->RunFor(1 * kSecond + rng.Uniform(2 * kSecond));

    // I2 continuously.
    ASSERT_TRUE(cluster.CheckReplicaConsistency())
        << "divergence at round " << round << " (seed " << GetParam() << ")";
  }

  // Heal everything (I3).
  cluster.network()->SetLossRate(0.0);
  for (const MemberId& a : ids) {
    for (const MemberId& b : ids) {
      if (a < b) cluster.network()->SetLinkCut(a, b, false);
    }
  }
  for (const MemberId& id : std::vector<MemberId>(crashed)) {
    ASSERT_TRUE(cluster.Restart(id).ok());
  }
  const MemberId final_primary = cluster.WaitForPrimary(120 * kSecond);
  ASSERT_FALSE(final_primary.empty()) << "seed " << GetParam();
  // Right after healing, commits can briefly exceed the client timeout
  // while the ring drains backlogs; clients retry.
  Status final_status;
  for (int attempt = 0; attempt < 5; ++attempt) {
    final_status = cluster.SyncWrite("final", "write", 10 * kSecond).status;
    if (final_status.ok()) break;
    cluster.loop()->RunFor(2 * kSecond);
  }
  ASSERT_TRUE(final_status.ok()) << final_status;
  cluster.loop()->RunFor(10 * kSecond);

  // I1: every acknowledged key is durable, holding some issued value.
  MySqlServer* primary = cluster.node(final_primary)->server();
  for (const auto& [key, value] : acked) {
    auto stored = primary->Read("bench.kv", key);
    ASSERT_TRUE(stored.has_value())
        << "acked key lost: " << key << " (seed " << GetParam() << ")";
    bool value_is_issued = false;
    for (const std::string& candidate : issued[key]) {
      if (*stored == key + "=" + candidate) {
        value_is_issued = true;
        break;
      }
    }
    EXPECT_TRUE(value_is_issued)
        << key << " holds foreign value " << *stored << " (seed "
        << GetParam() << ")";
  }

  // I4: executed GTID sets converge across caught-up databases.
  cluster.loop()->RunFor(10 * kSecond);
  const auto& reference = primary->engine()->ExecutedGtids();
  for (const MemberId& id : cluster.database_ids()) {
    MySqlServer* server = cluster.node(id)->server();
    if (server->engine()->LastAppliedOpId() ==
        primary->engine()->LastAppliedOpId()) {
      EXPECT_EQ(server->engine()->ExecutedGtids(), reference) << id;
    }
  }
  EXPECT_TRUE(cluster.CheckReplicaConsistency());
  EXPECT_GT(writes_acked, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServerTortureTest,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace myraft::server

// Message-level unit tests for SemiSyncServer: ack counting, multi-ack
// configs, rewind on receiver mismatch, degrade timing, and fencing —
// complementing the cluster-level semisync_test.

#include <gtest/gtest.h>

#include <memory>

#include "semisync/semisync_server.h"

namespace myraft::semisync {
namespace {

class SemiSyncUnitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    MakeServer(&primary_, "p", MemberKind::kMySql);
    MakeServer(&acker_a_, "la", MemberKind::kLogtailer);
    MakeServer(&acker_b_, "lb", MemberKind::kLogtailer);
  }

  void MakeServer(std::unique_ptr<SemiSyncServer>* out, const MemberId& id,
                  MemberKind kind) {
    SemiSyncOptions options;
    options.id = id;
    options.region = "r0";
    options.kind = kind;
    options.data_dir = "/" + id;
    options.server_uuid = Uuid::FromIndex(id[0]);
    options.numeric_server_id = static_cast<uint32_t>(id[0]);
    options.ack_timeout_micros = 1'000'000;
    auto server = SemiSyncServer::Create(
        env_.get(), options, &clock_,
        [this](Message m) { wire_.push_back(std::move(m)); });
    ASSERT_TRUE(server.ok()) << server.status();
    *out = std::move(*server);
  }

  /// Delivers all queued messages to their destinations, repeatedly,
  /// until the wire drains (synchronous "perfect network").
  void Pump() {
    int guard = 0;
    while (!wire_.empty() && ++guard < 1000) {
      std::vector<Message> batch;
      batch.swap(wire_);
      for (const Message& m : batch) {
        const MemberId dest = MessageDest(m);
        if (dest == "p") primary_->HandleMessage(m);
        if (dest == "la") acker_a_->HandleMessage(m);
        if (dest == "lb") acker_b_->HandleMessage(m);
      }
    }
  }

  /// Issues a write whose completion lands in *result (caller-owned so
  /// the callback may fire later, during Pump/Tick).
  void Write(const std::string& key,
             std::shared_ptr<SemiSyncWriteResult> result) {
    result->status = Status::TimedOut("never completed");
    binlog::RowOperation op;
    op.kind = binlog::RowOperation::Kind::kInsert;
    op.database = "d";
    op.table = "t";
    op.after_image = key + "=v";
    primary_->SubmitWrite({op}, [result](const SemiSyncWriteResult& r) {
      *result = r;
    });
  }

  ManualClock clock_;
  std::unique_ptr<Env> env_;
  std::vector<Message> wire_;
  std::unique_ptr<SemiSyncServer> primary_;
  std::unique_ptr<SemiSyncServer> acker_a_;
  std::unique_ptr<SemiSyncServer> acker_b_;
};

TEST_F(SemiSyncUnitTest, CommitRequiresConfiguredAcks) {
  ASSERT_TRUE(primary_->MakePrimary(1, {"la", "lb"}, {"la", "lb"}).ok());
  SemiSyncWriteResult result;
  result.status = Status::TimedOut("pending");
  binlog::RowOperation op;
  op.kind = binlog::RowOperation::Kind::kInsert;
  op.database = "d";
  op.table = "t";
  op.after_image = "k=v";
  primary_->SubmitWrite({op}, [&result](const SemiSyncWriteResult& r) {
    result = r;
  });
  EXPECT_TRUE(result.status.IsTimedOut());  // no acks yet
  Pump();                                   // ship + ack round trip
  EXPECT_TRUE(result.status.ok());
  EXPECT_FALSE(result.degraded_to_async);
  EXPECT_EQ(primary_->Read("d.t", "k"), "k=v");
}

TEST_F(SemiSyncUnitTest, RequiredAcksTwoNeedsBothAckers) {
  // Reconfigure the primary to require two semi-sync acks.
  SemiSyncOptions options = primary_->options();
  // (options are value-copied at Create; build a fresh primary)
  auto env = NewMemEnv();
  options.data_dir = "/p2";
  options.required_acks = 2;
  std::vector<Message> wire;
  auto primary = SemiSyncServer::Create(
      env.get(), options, &clock_,
      [&wire](Message m) { wire.push_back(std::move(m)); });
  ASSERT_TRUE(primary.ok());
  ASSERT_TRUE((*primary)->MakePrimary(1, {"la", "lb"}, {"la", "lb"}).ok());

  bool committed = false;
  binlog::RowOperation op;
  op.kind = binlog::RowOperation::Kind::kInsert;
  op.database = "d";
  op.table = "t";
  op.after_image = "k=v";
  (*primary)->SubmitWrite({op}, [&committed](const SemiSyncWriteResult& r) {
    committed = r.status.ok();
  });
  // Hand-craft the first acker's ack: not enough.
  AppendEntriesResponse ack;
  ack.from = "la";
  ack.dest = "p2";
  ack.dest = (*primary)->options().id;
  ack.term = 1;
  ack.success = true;
  ack.last_received = (*primary)->LastLogged();
  (*primary)->HandleMessage(Message(ack));
  EXPECT_FALSE(committed);
  ack.from = "lb";
  (*primary)->HandleMessage(Message(ack));
  EXPECT_TRUE(committed);
}

TEST_F(SemiSyncUnitTest, AckTimeoutDegradesToAsync) {
  ASSERT_TRUE(primary_->MakePrimary(1, {"la"}, {"la"}).ok());
  auto result = std::make_shared<SemiSyncWriteResult>();
  Write("k", result);
  wire_.clear();  // the shipment is lost: no acks will ever come
  clock_.AdvanceMicros(1'100'000);
  primary_->Tick();
  EXPECT_TRUE(result->status.ok());
  EXPECT_TRUE(result->degraded_to_async);
  EXPECT_EQ(primary_->stats().commits_degraded_to_async, 1u);
}

TEST_F(SemiSyncUnitTest, ReceiverRejectsStaleGenerationStream) {
  ASSERT_TRUE(acker_a_->MakeReplica("p").ok());
  // Generation 5 accepted...
  AppendEntriesRequest request;
  request.leader = "p";
  request.dest = "la";
  request.term = 5;
  request.entries.push_back(LogEntry::Make({5, 1}, EntryType::kNoOp, ""));
  // A semisync stream ships transaction entries; use a real payload.
  binlog::TransactionPayloadBuilder builder;
  const std::string payload =
      builder.Finalize({Uuid::FromIndex(1), 1}, {5, 1}, 1, 0, 1);
  request.entries[0] = LogEntry::Make({5, 1}, EntryType::kTransaction, payload);
  acker_a_->HandleMessage(Message(request));
  EXPECT_EQ(acker_a_->LastLogged(), (OpId{5, 1}));
  // ...generation 4 afterwards is fenced off.
  AppendEntriesRequest stale = request;
  stale.term = 4;
  stale.prev = {5, 1};
  const std::string payload2 =
      builder.Finalize({Uuid::FromIndex(1), 2}, {4, 2}, 2, 0, 1);
  stale.entries[0] = LogEntry::Make({4, 2}, EntryType::kTransaction, payload2);
  acker_a_->HandleMessage(Message(stale));
  EXPECT_EQ(acker_a_->LastLogged(), (OpId{5, 1}));
}

TEST_F(SemiSyncUnitTest, PrimaryRewindsOnReceiverMismatch) {
  ASSERT_TRUE(primary_->MakePrimary(1, {"la"}, {"la"}).ok());
  ASSERT_TRUE(acker_a_->MakeReplica("p").ok());
  // Three writes shipped and acked normally.
  for (int i = 0; i < 3; ++i) {
    auto result = std::make_shared<SemiSyncWriteResult>();
    Write("k" + std::to_string(i), result);
    Pump();
    EXPECT_TRUE(result->status.ok()) << i;
  }
  EXPECT_EQ(acker_a_->LastLogged().index, 3u);
  EXPECT_EQ(primary_->ReceiverMatchIndex("la"), 3u);
}

TEST_F(SemiSyncUnitTest, WritesRejectedWhenReadOnlyOrReplica) {
  ASSERT_TRUE(primary_->MakePrimary(1, {"la"}, {"la"}).ok());
  primary_->SetReadOnly(true);
  auto result = std::make_shared<SemiSyncWriteResult>();
  Write("k", result);
  EXPECT_TRUE(result->status.IsServiceUnavailable());
  primary_->SetReadOnly(false);
  ASSERT_TRUE(primary_->MakeReplica("someone").ok());
  Write("k", result);
  EXPECT_TRUE(result->status.IsServiceUnavailable());
  // Logtailers refuse outright.
  bool called = false;
  acker_a_->SubmitWrite({}, [&called](const SemiSyncWriteResult& r) {
    called = true;
    EXPECT_TRUE(r.status.IsNotSupported());
  });
  EXPECT_TRUE(called);
}

TEST_F(SemiSyncUnitTest, DemotionAbortsPendingWrites) {
  ASSERT_TRUE(primary_->MakePrimary(1, {"la"}, {"la"}).ok());
  auto result = std::make_shared<SemiSyncWriteResult>();
  Write("k", result);
  wire_.clear();
  ASSERT_TRUE(primary_->MakeReplica("new-primary").ok());
  EXPECT_TRUE(result->status.IsAborted());
  EXPECT_TRUE(primary_->engine()->PreparedXids().empty());
}

}  // namespace
}  // namespace myraft::semisync

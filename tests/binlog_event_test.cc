// Event encoding, typed bodies, and transaction payload build/parse.

#include <gtest/gtest.h>

#include "binlog/binlog_event.h"
#include "binlog/transaction.h"
#include "util/random.h"

namespace myraft::binlog {
namespace {

Uuid U(uint64_t i) { return Uuid::FromIndex(i); }

TEST(BinlogEventTest, EncodeDecodeRoundTrip) {
  const BinlogEvent e = MakeEvent(EventType::kBegin, 123456789, 42, {7, 99},
                                  "BEGIN");
  std::string buf;
  e.EncodeTo(&buf);
  EXPECT_EQ(buf.size(), e.EncodedSize());
  Slice in(buf);
  auto decoded = BinlogEvent::DecodeFrom(&in);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, e);
  EXPECT_TRUE(in.empty());
}

TEST(BinlogEventTest, CrcDetectsCorruption) {
  const BinlogEvent e =
      MakeEvent(EventType::kXid, 1, 2, {1, 1}, XidBody{77}.Encode());
  std::string buf;
  e.EncodeTo(&buf);
  for (size_t pos : {size_t{0}, buf.size() / 2, buf.size() - 1}) {
    std::string corrupted = buf;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x40);
    Slice in(corrupted);
    EXPECT_FALSE(BinlogEvent::DecodeFrom(&in).ok()) << pos;
  }
}

TEST(BinlogEventTest, DecodeRejectsTruncation) {
  const BinlogEvent e = MakeEvent(EventType::kBegin, 1, 2, {1, 1}, "BEGIN");
  std::string buf;
  e.EncodeTo(&buf);
  for (size_t len = 0; len < buf.size(); ++len) {
    Slice in(buf.data(), len);
    EXPECT_FALSE(BinlogEvent::DecodeFrom(&in).ok()) << len;
  }
}

TEST(TypedBodiesTest, AllRoundTrip) {
  {
    FormatDescriptionBody b{"myraft-1.0", 555};
    auto d = FormatDescriptionBody::Decode(b.Encode());
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(d->server_version, "myraft-1.0");
    EXPECT_EQ(d->created_micros, 555u);
  }
  {
    PreviousGtidsBody b;
    b.gtids.AddRange(U(1), 1, 9);
    auto d = PreviousGtidsBody::Decode(b.Encode());
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(d->gtids, b.gtids);
  }
  {
    GtidBody b{Gtid{U(2), 33}};
    auto d = GtidBody::Decode(b.Encode());
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(d->gtid, b.gtid);
  }
  {
    TableMapBody b{17, "shard0", "users", 5};
    auto d = TableMapBody::Decode(b.Encode());
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(d->table_id, 17u);
    EXPECT_EQ(d->database, "shard0");
    EXPECT_EQ(d->table, "users");
    EXPECT_EQ(d->column_count, 5u);
  }
  {
    RowsBody b;
    b.table_id = 17;
    b.rows.emplace_back("before-img", "after-img");
    b.rows.emplace_back("", "insert-only");
    auto d = RowsBody::Decode(b.Encode());
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(d->rows, b.rows);
  }
  {
    XidBody b{0xDEADBEEFCAFEull};
    auto d = XidBody::Decode(b.Encode());
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(d->xid, b.xid);
  }
  {
    RotateBody b{"binlog.000002", 4096};
    auto d = RotateBody::Decode(b.Encode());
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(d->next_file, "binlog.000002");
    EXPECT_EQ(d->position, 4096u);
  }
  {
    MetadataBody b{3, "config-bytes"};
    auto d = MetadataBody::Decode(b.Encode());
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(d->entry_type, 3);
    EXPECT_EQ(d->payload, "config-bytes");
  }
}

RowOperation MakeOp(RowOperation::Kind kind, const std::string& key,
                    const std::string& value) {
  RowOperation op;
  op.kind = kind;
  op.database = "db0";
  op.table = "kv";
  op.column_count = 2;
  if (kind != RowOperation::Kind::kInsert) op.before_image = key + "=old";
  if (kind != RowOperation::Kind::kDelete) op.after_image = key + "=" + value;
  return op;
}

TEST(TransactionPayloadTest, BuildParseRoundTrip) {
  TransactionPayloadBuilder builder;
  builder.AddOperation(MakeOp(RowOperation::Kind::kInsert, "k1", "v1"));
  builder.AddOperation(MakeOp(RowOperation::Kind::kUpdate, "k2", "v2"));
  builder.AddOperation(MakeOp(RowOperation::Kind::kDelete, "k3", ""));

  const Gtid gtid{U(5), 88};
  const OpId opid{4, 1234};
  const std::string payload = builder.Finalize(gtid, opid, 999, 111, 7);

  ASSERT_TRUE(ValidateTransactionPayload(payload, opid).ok());
  auto txn = ParseTransactionPayload(payload);
  ASSERT_TRUE(txn.ok()) << txn.status();
  EXPECT_EQ(txn->gtid, gtid);
  EXPECT_EQ(txn->opid, opid);
  EXPECT_EQ(txn->xid, 999u);
  ASSERT_EQ(txn->ops.size(), 3u);
  EXPECT_EQ(txn->ops[0].kind, RowOperation::Kind::kInsert);
  EXPECT_EQ(txn->ops[0].after_image, "k1=v1");
  EXPECT_EQ(txn->ops[1].kind, RowOperation::Kind::kUpdate);
  EXPECT_EQ(txn->ops[1].before_image, "k2=old");
  EXPECT_EQ(txn->ops[2].kind, RowOperation::Kind::kDelete);
  EXPECT_TRUE(txn->ops[2].after_image.empty());
}

TEST(TransactionPayloadTest, EmptyTransactionStillWellFormed) {
  TransactionPayloadBuilder builder;
  const std::string payload =
      builder.Finalize(Gtid{U(1), 1}, OpId{1, 1}, 1, 0, 0);
  auto txn = ParseTransactionPayload(payload);
  ASSERT_TRUE(txn.ok());
  EXPECT_TRUE(txn->ops.empty());
}

TEST(TransactionPayloadTest, ValidateRejectsWrongOpId) {
  TransactionPayloadBuilder builder;
  builder.AddOperation(MakeOp(RowOperation::Kind::kInsert, "k", "v"));
  const std::string payload =
      builder.Finalize(Gtid{U(1), 1}, OpId{2, 10}, 1, 0, 0);
  EXPECT_TRUE(ValidateTransactionPayload(payload, OpId{2, 10}).ok());
  EXPECT_FALSE(ValidateTransactionPayload(payload, OpId{2, 11}).ok());
  EXPECT_FALSE(ValidateTransactionPayload(payload, OpId{3, 10}).ok());
}

TEST(TransactionPayloadTest, ValidateRejectsStructuralDamage) {
  TransactionPayloadBuilder builder;
  builder.AddOperation(MakeOp(RowOperation::Kind::kInsert, "k", "v"));
  const OpId opid{1, 5};
  const std::string payload = builder.Finalize(Gtid{U(1), 1}, opid, 1, 0, 0);

  // Empty payload.
  EXPECT_FALSE(ValidateTransactionPayload("", opid).ok());

  // Truncated after the first event (missing Xid).
  Slice in(payload);
  ASSERT_TRUE(BinlogEvent::DecodeFrom(&in).ok());
  const size_t first_event_len = payload.size() - in.size();
  EXPECT_FALSE(
      ValidateTransactionPayload(Slice(payload.data(), first_event_len), opid)
          .ok());

  // Trailing junk after Xid.
  std::string with_junk = payload;
  MakeEvent(EventType::kBegin, 0, 0, opid, "BEGIN").EncodeTo(&with_junk);
  EXPECT_FALSE(ValidateTransactionPayload(with_junk, opid).ok());

  // Does not start with Gtid: drop the first event.
  EXPECT_FALSE(ValidateTransactionPayload(
                   Slice(payload.data() + first_event_len,
                         payload.size() - first_event_len),
                   opid)
                   .ok());
}

class TransactionPayloadFuzzTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(TransactionPayloadFuzzTest, RandomTransactionsRoundTrip) {
  Random rng(GetParam());
  for (int t = 0; t < 20; ++t) {
    TransactionPayloadBuilder builder;
    const int n_ops = static_cast<int>(rng.Uniform(20));
    for (int i = 0; i < n_ops; ++i) {
      const auto kind = static_cast<RowOperation::Kind>(rng.Uniform(3));
      std::string value(rng.Uniform(2048), 'v');
      builder.AddOperation(
          MakeOp(kind, "key" + std::to_string(rng.Uniform(100)), value));
    }
    const Gtid gtid{U(rng.Uniform(5)), 1 + rng.Uniform(1000)};
    const OpId opid{1 + rng.Uniform(10), 1 + rng.Uniform(100000)};
    const uint64_t xid = rng.Next();
    const std::string payload = builder.Finalize(gtid, opid, xid, 42, 1);
    auto txn = ParseTransactionPayload(payload);
    ASSERT_TRUE(txn.ok()) << txn.status();
    EXPECT_EQ(txn->gtid, gtid);
    EXPECT_EQ(txn->opid, opid);
    EXPECT_EQ(txn->xid, xid);
    EXPECT_EQ(txn->ops.size(), static_cast<size_t>(n_ops));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransactionPayloadFuzzTest,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace myraft::binlog

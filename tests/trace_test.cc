// Causal-tracing tests: ring-buffer overflow accounting, deterministic
// same-seed journals, the cross-node span tree of a single traced write
// (client -> leader commit stages -> follower append/ack -> follower
// apply), trace-context wire/GTID round trips with backward-compatible
// decode, the TraceAnalyzer failover decomposition against the downtime
// probe, the slow-transaction log, and sim-clock-stamped log contexts.

#include "util/trace.h"

#include <gtest/gtest.h>

#include "binlog/binlog_event.h"
#include "flexiraft/flexiraft.h"
#include "sim/cluster.h"
#include "util/clock.h"
#include "util/logging.h"
#include "wire/messages.h"

namespace myraft::trace {
namespace {

using flexiraft::FlexiRaftQuorumEngine;
using flexiraft::QuorumMode;
using sim::ClusterHarness;
using sim::ClusterOptions;
constexpr uint64_t kSecond = 1'000'000;

const raft::QuorumEngine* FlexiEngine() {
  static FlexiRaftQuorumEngine* engine =
      new FlexiRaftQuorumEngine({QuorumMode::kSingleRegionDynamic});
  return engine;
}

ClusterOptions SmallCluster(uint64_t seed) {
  ClusterOptions options;
  options.seed = seed;
  options.topology.db_regions = 3;
  options.topology.logtailers_per_db = 2;
  return options;
}

// --- Tracer unit behaviour ----------------------------------------------------

TEST(TracerTest, RingOverflowDropsOldestAndCounts) {
  ManualClock clock;
  metrics::MetricRegistry registry;
  TracerOptions options;
  options.node = "n1";
  options.id_salt = 1;
  options.capacity = 8;
  options.clock = &clock;
  options.metrics = &registry;
  Tracer tracer(options);

  for (int i = 0; i < 12; ++i) {
    clock.AdvanceMicros(10);
    tracer.Instant("test", "e" + std::to_string(i));
  }
  EXPECT_EQ(tracer.size(), 8u);
  EXPECT_EQ(tracer.dropped(), 4u);
  EXPECT_EQ(registry.GetCounter("trace.dropped")->value(), 4u);
  const auto snapshot = tracer.Snapshot();
  ASSERT_EQ(snapshot.size(), 8u);
  EXPECT_EQ(snapshot.front().name, "e4");  // oldest four gone
  EXPECT_EQ(snapshot.back().name, "e11");
}

TEST(TracerTest, SpanIdsAreSaltedCounters) {
  ManualClock clock;
  TracerOptions options;
  options.node = "n2";
  options.id_salt = 3;
  options.clock = &clock;
  Tracer tracer(options);
  const uint64_t a = tracer.BeginSpan("c", "s", 0, 0);
  const uint64_t b = tracer.BeginSpan("c", "s", 0, 0);
  EXPECT_EQ(a >> 40, 3u);
  EXPECT_EQ(b, a + 1);
  tracer.EndSpan(b);
  tracer.EndSpan(a);
  // A zero id is a no-op; an unmatched id still records its end.
  tracer.EndSpan(0);
  tracer.EndSpan(0xdead);
  EXPECT_EQ(tracer.size(), 5u);
}

// --- Wire / GTID-body trace context -------------------------------------------

TEST(TraceWireTest, AppendEntriesContextRoundTripsAndStaysCompatible) {
  AppendEntriesRequest request;
  request.leader = "db0";
  request.dest = "db1";
  request.trace_id = 77;
  request.trace_span_id = 88;
  std::string traced;
  request.EncodeTo(&traced);
  auto decoded = AppendEntriesRequest::DecodeFrom(traced);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, request);

  // Untraced requests encode without the trailing varints (byte-identical
  // to the pre-tracing format) and decode to 0/0.
  AppendEntriesRequest untraced = request;
  untraced.trace_id = 0;
  untraced.trace_span_id = 0;
  std::string old_wire;
  untraced.EncodeTo(&old_wire);
  EXPECT_LT(old_wire.size(), traced.size());
  auto old_decoded = AppendEntriesRequest::DecodeFrom(old_wire);
  ASSERT_TRUE(old_decoded.ok()) << old_decoded.status();
  EXPECT_EQ(old_decoded->trace_id, 0u);
  EXPECT_EQ(old_decoded->trace_span_id, 0u);

  AppendEntriesResponse response;
  response.from = "db1";
  response.dest = "db0";
  response.trace_id = 77;
  response.trace_span_id = 88;
  std::string response_wire;
  response.EncodeTo(&response_wire);
  auto response_decoded = AppendEntriesResponse::DecodeFrom(response_wire);
  ASSERT_TRUE(response_decoded.ok()) << response_decoded.status();
  EXPECT_EQ(*response_decoded, response);
}

TEST(TraceWireTest, GtidBodyContextRoundTripsAndStaysCompatible) {
  binlog::GtidBody body;
  body.gtid.server_uuid = Uuid::FromIndex(5);
  body.gtid.txn_no = 9;
  body.last_committed = 3;
  body.sequence_number = 7;
  body.trace_id = 123;
  body.trace_span_id = 456;
  auto decoded = binlog::GtidBody::Decode(body.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->trace_id, 123u);
  EXPECT_EQ(decoded->trace_span_id, 456u);
  EXPECT_EQ(decoded->last_committed, 3u);
  EXPECT_EQ(decoded->sequence_number, 7u);

  binlog::GtidBody untraced = body;
  untraced.trace_id = 0;
  untraced.trace_span_id = 0;
  EXPECT_LT(untraced.Encode().size(), body.Encode().size());
  auto old_decoded = binlog::GtidBody::Decode(untraced.Encode());
  ASSERT_TRUE(old_decoded.ok()) << old_decoded.status();
  EXPECT_EQ(old_decoded->trace_id, 0u);
  EXPECT_EQ(old_decoded->gtid.txn_no, 9u);
}

// --- Cross-node span tree of one traced write ---------------------------------

struct FlatRecord {
  std::string node;
  TraceRecord record;
};

std::vector<FlatRecord> AllRecords(const ClusterHarness& cluster) {
  std::vector<FlatRecord> out;
  for (const auto& journal : cluster.TraceJournals()) {
    for (const auto& record : journal.records) {
      out.push_back(FlatRecord{journal.node, record});
    }
  }
  return out;
}

const FlatRecord* FindBegin(const std::vector<FlatRecord>& all,
                            const std::string& category,
                            const std::string& name, uint64_t trace_id,
                            const std::string& node = "") {
  for (const auto& flat : all) {
    if (flat.record.kind != RecordKind::kSpanBegin) continue;
    if (flat.record.category != category || flat.record.name != name) continue;
    if (trace_id != 0 && flat.record.trace_id != trace_id) continue;
    if (!node.empty() && flat.node != node) continue;
    return &flat;
  }
  return nullptr;
}

bool HasEnd(const std::vector<FlatRecord>& all, uint64_t span_id) {
  for (const auto& flat : all) {
    if (flat.record.kind == RecordKind::kSpanEnd &&
        flat.record.span_id == span_id) {
      return true;
    }
  }
  return false;
}

TEST(TraceClusterTest, SingleWriteYieldsCrossNodeSpanTree) {
  ClusterHarness cluster(SmallCluster(11), FlexiEngine());
  ASSERT_TRUE(cluster.Bootstrap().ok());
  const MemberId primary = cluster.WaitForPrimary(60 * kSecond);
  ASSERT_FALSE(primary.empty());

  auto result = cluster.SyncWrite("key", "value");
  ASSERT_TRUE(result.status.ok()) << result.status;
  cluster.loop()->RunFor(2 * kSecond);  // let followers append and apply

  const auto all = AllRecords(cluster);

  // Root: the client span.
  const FlatRecord* client = FindBegin(all, "client", "write", 0, "client");
  ASSERT_NE(client, nullptr);
  const uint64_t trace = client->record.trace_id;
  ASSERT_NE(trace, 0u);
  EXPECT_TRUE(HasEnd(all, client->record.span_id));

  // Leader commit pipeline, parented under the client span.
  const FlatRecord* total =
      FindBegin(all, "server", "commit.total", trace, primary);
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->record.parent_span_id, client->record.span_id);
  EXPECT_TRUE(HasEnd(all, total->record.span_id));
  for (const char* stage :
       {"commit.flush", "commit.consensus_wait", "commit.engine_commit"}) {
    const FlatRecord* span = FindBegin(all, "server", stage, trace, primary);
    ASSERT_NE(span, nullptr) << stage;
    EXPECT_EQ(span->record.parent_span_id, total->record.span_id) << stage;
    EXPECT_TRUE(HasEnd(all, span->record.span_id)) << stage;
  }

  // Replication: a leader-side batch span carrying the trace, and on a
  // different node a follower append span parented under that batch.
  const FlatRecord* batch =
      FindBegin(all, "raft", "replicate.batch", trace, primary);
  ASSERT_NE(batch, nullptr);
  EXPECT_EQ(batch->record.parent_span_id, total->record.span_id);

  bool follower_append = false;
  bool follower_apply = false;
  for (const auto& flat : all) {
    if (flat.node == primary || flat.node == "client") continue;
    if (flat.record.kind != RecordKind::kSpanBegin) continue;
    if (flat.record.trace_id != trace) continue;
    if (flat.record.category == "raft" &&
        flat.record.name == "follower.append" &&
        flat.record.parent_span_id != 0) {
      follower_append = true;
    }
    if (flat.record.category == "applier" && flat.record.name == "apply" &&
        flat.record.parent_span_id == total->record.span_id) {
      follower_apply = true;
      EXPECT_TRUE(HasEnd(all, flat.record.span_id));
    }
  }
  EXPECT_TRUE(follower_append);
  EXPECT_TRUE(follower_apply);

  // Quorum ack instant on the leader.
  bool quorum_ack = false;
  for (const auto& flat : all) {
    if (flat.node == primary && flat.record.kind == RecordKind::kInstant &&
        flat.record.category == "raft" && flat.record.name == "quorum_ack" &&
        flat.record.trace_id == trace) {
      quorum_ack = true;
    }
  }
  EXPECT_TRUE(quorum_ack);

  // The Chrome export contains the whole tree (process metadata per node,
  // the commit stages, and the follower apply).
  const std::string chrome = cluster.TraceChromeJson();
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("process_name"), std::string::npos);
  EXPECT_NE(chrome.find("commit.total"), std::string::npos);
  EXPECT_NE(chrome.find("follower.append"), std::string::npos);
  EXPECT_NE(chrome.find("apply"), std::string::npos);
}

// --- Determinism ---------------------------------------------------------------

std::string RunTracedScenario(uint64_t seed) {
  ClusterHarness cluster(SmallCluster(seed), FlexiEngine());
  if (!cluster.Bootstrap().ok()) return "bootstrap-failed";
  const MemberId primary = cluster.WaitForPrimary(60 * kSecond);
  if (primary.empty()) return "no-primary";
  (void)cluster.SyncWrite("a", "1");
  (void)cluster.SyncWrite("b", "2");
  cluster.Crash(primary);
  const MemberId next = cluster.WaitForPrimary(120 * kSecond);
  if (next.empty()) return "no-failover";
  (void)cluster.SyncWrite("c", "3");
  cluster.loop()->RunFor(2 * kSecond);
  return cluster.TraceJsonl();
}

TEST(TraceClusterTest, SameSeedRunsEmitByteIdenticalJournals) {
  const std::string first = RunTracedScenario(21);
  const std::string second = RunTracedScenario(21);
  ASSERT_GT(first.size(), 1000u);
  EXPECT_EQ(first, second);
}

// --- Failover decomposition vs the downtime probe -------------------------------

TEST(TraceClusterTest, FailoverBreakdownMatchesDowntimeProbe) {
  constexpr uint64_t kProbeInterval = 10'000;
  ClusterHarness cluster(SmallCluster(31), FlexiEngine());
  ASSERT_TRUE(cluster.Bootstrap().ok());
  const MemberId primary = cluster.WaitForPrimary(60 * kSecond);
  ASSERT_FALSE(primary.empty());
  (void)cluster.SyncWrite("warm", "up");
  cluster.loop()->RunFor(3 * kSecond);

  auto downtime = cluster.MeasureWriteDowntime(
      [&]() { cluster.Crash(primary); }, kProbeInterval);
  ASSERT_TRUE(downtime.recovered);

  TraceAnalyzer analyzer(cluster.TraceJournals());
  const auto phases = analyzer.FailoverBreakdown();
  ASSERT_TRUE(phases.complete);
  EXPECT_NE(phases.winner, primary);
  EXPECT_FALSE(phases.winner.empty());
  EXPECT_EQ(phases.total_micros,
            phases.detect_micros + phases.election_micros +
                phases.promotion_micros + phases.first_write_micros);
  EXPECT_GT(phases.detect_micros, 0u);
  EXPECT_GT(phases.promotion_micros, 0u);

  // The trace-derived outage and the client-observed outage measure the
  // same window from two vantage points; they may differ by at most one
  // probe interval (probe issue quantisation + client network latency).
  const uint64_t probe = downtime.downtime_micros;
  const uint64_t traced = phases.total_micros;
  const uint64_t diff = probe > traced ? probe - traced : traced - probe;
  EXPECT_LE(diff, kProbeInterval)
      << "probe=" << probe << " traced=" << traced;

  // The analyzer's JSON emitters produce non-trivial output.
  EXPECT_NE(TraceAnalyzer::FailoverJson(phases).find("\"total_us\""),
            std::string::npos);
  EXPECT_NE(analyzer.StageBreakdownJson().find("server.commit.total"),
            std::string::npos);
}

// --- Slow-transaction log -------------------------------------------------------

TEST(TraceClusterTest, SlowTxnThresholdEmitsStructuredLine) {
  ClusterOptions options = SmallCluster(41);
  options.slow_txn_threshold_micros = 1;  // every commit is "slow"
  ClusterHarness cluster(options, FlexiEngine());

  std::vector<std::string> warnings;
  SetLogSink([&warnings](LogLevel level, const std::string& message) {
    if (level >= LogLevel::kWarning) warnings.push_back(message);
  });
  ASSERT_TRUE(cluster.Bootstrap().ok());
  const MemberId primary = cluster.WaitForPrimary(60 * kSecond);
  EXPECT_FALSE(primary.empty());
  auto result = cluster.SyncWrite("key", "value");
  SetLogSink(nullptr);
  ASSERT_TRUE(result.status.ok()) << result.status;

  bool found = false;
  for (const std::string& line : warnings) {
    if (line.find("slow-txn") == std::string::npos) continue;
    found = true;
    EXPECT_NE(line.find("gtid="), std::string::npos);
    EXPECT_NE(line.find("total_us="), std::string::npos);
    EXPECT_NE(line.find("flush_us="), std::string::npos);
    EXPECT_NE(line.find("wait_us="), std::string::npos);
    EXPECT_NE(line.find("commit_us="), std::string::npos);
    EXPECT_NE(line.find("straggler="), std::string::npos);
    break;
  }
  EXPECT_TRUE(found) << "no slow-txn line among " << warnings.size()
                     << " warnings";
}

// --- Sim-clock-stamped logging --------------------------------------------------

TEST(LogContextTest, StructuredSinkSeesSimClockStamp) {
  ManualClock clock;
  clock.SetMicros(4321);
  std::vector<LogRecord> records;
  SetStructuredLogSink(
      [&records](const LogRecord& record) { records.push_back(record); });
  SetLogSink([](LogLevel, const std::string&) {});  // silence stderr

  {
    ScopedLogContext context("nodeX", &clock);
    MYRAFT_LOG(Warning) << "inside";
  }
  MYRAFT_LOG(Warning) << "outside";

  SetStructuredLogSink(nullptr);
  SetLogSink(nullptr);

  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].node, "nodeX");
  EXPECT_EQ(records[0].timestamp_micros, 4321u);
  EXPECT_NE(records[0].message.find("inside"), std::string::npos);
  EXPECT_NE(records[0].message.find("4321"), std::string::npos);
  EXPECT_NE(records[0].message.find("nodeX"), std::string::npos);
  EXPECT_TRUE(records[1].node.empty());
  EXPECT_EQ(records[1].timestamp_micros, 0u);
}

}  // namespace
}  // namespace myraft::trace

// MiniEngine: 2-phase transactions, row locks, WAL recovery (§A.2 cases),
// GTID/OpId tracking, checkpointing and state checksums.

#include "storage/engine.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace myraft::storage {
namespace {

binlog::Gtid G(uint64_t seq) { return binlog::Gtid{Uuid::FromIndex(1), seq}; }

class MiniEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    options_.dir = "/engine";
    options_.clock = &clock_;
    Reopen();
  }

  void Reopen() {
    engine_.reset();
    auto e = MiniEngine::Open(env_.get(), options_);
    ASSERT_TRUE(e.ok()) << e.status();
    engine_ = std::move(*e);
  }

  /// Runs a complete single-row transaction through prepare + commit.
  void CommitRow(const std::string& key, const std::string& value,
                 uint64_t xid, OpId opid) {
    const TxnId txn = engine_->Begin();
    ASSERT_TRUE(engine_->Put(txn, "t", key, value).ok());
    ASSERT_TRUE(engine_->Prepare(txn, xid).ok());
    ASSERT_TRUE(engine_->CommitPrepared(xid, opid, G(xid)).ok());
  }

  ManualClock clock_;
  std::unique_ptr<Env> env_;
  EngineOptions options_;
  std::unique_ptr<MiniEngine> engine_;
};

TEST_F(MiniEngineTest, CommitMakesWritesVisible) {
  const TxnId txn = engine_->Begin();
  ASSERT_TRUE(engine_->Put(txn, "t", "k", "v1").ok());
  EXPECT_EQ(engine_->Get("t", "k"), std::nullopt);  // invisible before commit
  ASSERT_TRUE(engine_->Prepare(txn, 1).ok());
  EXPECT_EQ(engine_->Get("t", "k"), std::nullopt);  // still invisible
  ASSERT_TRUE(engine_->CommitPrepared(1, {1, 1}, G(1)).ok());
  EXPECT_EQ(engine_->Get("t", "k"), "v1");
  EXPECT_EQ(engine_->LastAppliedOpId(), (OpId{1, 1}));
  EXPECT_TRUE(engine_->ExecutedGtids().Contains(G(1)));
}

TEST_F(MiniEngineTest, DeleteRemovesRow) {
  CommitRow("k", "v", 1, {1, 1});
  const TxnId txn = engine_->Begin();
  ASSERT_TRUE(engine_->Delete(txn, "t", "k").ok());
  ASSERT_TRUE(engine_->Prepare(txn, 2).ok());
  ASSERT_TRUE(engine_->CommitPrepared(2, {1, 2}, G(2)).ok());
  EXPECT_EQ(engine_->Get("t", "k"), std::nullopt);
  EXPECT_EQ(engine_->RowCount(), 0u);
}

TEST_F(MiniEngineTest, RowLockBlocksConflictingWriters) {
  const TxnId a = engine_->Begin();
  const TxnId b = engine_->Begin();
  ASSERT_TRUE(engine_->Put(a, "t", "k", "va").ok());
  EXPECT_TRUE(engine_->Put(b, "t", "k", "vb").IsAborted());
  // Different row is fine.
  EXPECT_TRUE(engine_->Put(b, "t", "other", "vb").ok());
  // Lock persists through prepare...
  ASSERT_TRUE(engine_->Prepare(a, 1).ok());
  EXPECT_TRUE(engine_->Put(b, "t", "k", "vb").IsAborted());
  // ...and releases at engine commit (pipeline stage 3, §3.4).
  ASSERT_TRUE(engine_->CommitPrepared(1, {1, 1}, G(1)).ok());
  EXPECT_TRUE(engine_->Put(b, "t", "k", "vb").ok());
}

TEST_F(MiniEngineTest, RollbackReleasesLocksAndDiscards) {
  const TxnId a = engine_->Begin();
  ASSERT_TRUE(engine_->Put(a, "t", "k", "va").ok());
  ASSERT_TRUE(engine_->Rollback(a).ok());
  EXPECT_EQ(engine_->Get("t", "k"), std::nullopt);
  const TxnId b = engine_->Begin();
  EXPECT_TRUE(engine_->Put(b, "t", "k", "vb").ok());
}

TEST_F(MiniEngineTest, RollbackPreparedIsOnline) {
  const TxnId a = engine_->Begin();
  ASSERT_TRUE(engine_->Put(a, "t", "k", "va").ok());
  ASSERT_TRUE(engine_->Prepare(a, 9).ok());
  EXPECT_EQ(engine_->PreparedXids(), std::vector<uint64_t>{9});
  ASSERT_TRUE(engine_->RollbackPrepared(9).ok());
  EXPECT_TRUE(engine_->PreparedXids().empty());
  EXPECT_EQ(engine_->Get("t", "k"), std::nullopt);
  // Lock released.
  const TxnId b = engine_->Begin();
  EXPECT_TRUE(engine_->Put(b, "t", "k", "vb").ok());
}

TEST_F(MiniEngineTest, LifecycleErrorsAreRejected) {
  EXPECT_TRUE(engine_->Put(999, "t", "k", "v").IsNotFound());
  EXPECT_TRUE(engine_->Rollback(999).IsNotFound());
  EXPECT_TRUE(engine_->CommitPrepared(999, {1, 1}, G(1)).IsNotFound());
  EXPECT_TRUE(engine_->RollbackPrepared(999).IsNotFound());

  const TxnId a = engine_->Begin();
  ASSERT_TRUE(engine_->Put(a, "t", "k", "v").ok());
  ASSERT_TRUE(engine_->Prepare(a, 1).ok());
  EXPECT_FALSE(engine_->Put(a, "t", "k2", "v").ok());   // post-prepare write
  EXPECT_FALSE(engine_->Prepare(a, 2).ok());            // double prepare
  EXPECT_FALSE(engine_->Rollback(a).ok());              // wrong rollback kind

  const TxnId b = engine_->Begin();
  ASSERT_TRUE(engine_->Put(b, "t", "k2", "v").ok());
  EXPECT_TRUE(engine_->Prepare(b, 1).IsAlreadyPresent());  // xid reuse
}

TEST_F(MiniEngineTest, OverwriteWithinTransactionKeepsLastValue) {
  const TxnId a = engine_->Begin();
  ASSERT_TRUE(engine_->Put(a, "t", "k", "v1").ok());
  ASSERT_TRUE(engine_->Put(a, "t", "k", "v2").ok());
  auto writes = engine_->PendingWrites(a);
  ASSERT_TRUE(writes.ok());
  ASSERT_EQ(writes->size(), 1u);
  EXPECT_EQ((*writes)[0].value, "v2");
  ASSERT_TRUE(engine_->Prepare(a, 1).ok());
  ASSERT_TRUE(engine_->CommitPrepared(1, {1, 1}, G(1)).ok());
  EXPECT_EQ(engine_->Get("t", "k"), "v2");
}

TEST_F(MiniEngineTest, CommittedStateSurvivesReopen) {
  CommitRow("k1", "v1", 1, {1, 1});
  CommitRow("k2", "v2", 2, {1, 2});
  ASSERT_TRUE(engine_->Sync().ok());
  const uint64_t checksum = engine_->StateChecksum();

  Reopen();
  EXPECT_EQ(engine_->Get("t", "k1"), "v1");
  EXPECT_EQ(engine_->Get("t", "k2"), "v2");
  EXPECT_EQ(engine_->LastAppliedOpId(), (OpId{1, 2}));
  EXPECT_TRUE(engine_->ExecutedGtids().Contains(G(2)));
  EXPECT_EQ(engine_->StateChecksum(), checksum);
}

TEST_F(MiniEngineTest, PreparedTransactionsRollBackAtRecovery) {
  // §A.2: a transaction prepared in the engine but not committed before
  // the crash is rolled back on restart.
  CommitRow("committed", "v", 1, {1, 1});
  const TxnId txn = engine_->Begin();
  ASSERT_TRUE(engine_->Put(txn, "t", "pending", "lost").ok());
  ASSERT_TRUE(engine_->Prepare(txn, 2).ok());
  ASSERT_TRUE(engine_->Sync().ok());

  Reopen();  // "crash"
  EXPECT_EQ(engine_->RolledBackAtRecovery(), std::vector<uint64_t>{2});
  EXPECT_TRUE(engine_->PreparedXids().empty());
  EXPECT_EQ(engine_->Get("t", "pending"), std::nullopt);
  EXPECT_EQ(engine_->Get("t", "committed"), "v");
  // The applier may now re-apply xid 2 from the replicated log.
  const TxnId retry = engine_->Begin();
  ASSERT_TRUE(engine_->Put(retry, "t", "pending", "reapplied").ok());
  ASSERT_TRUE(engine_->Prepare(retry, 2).ok());
  ASSERT_TRUE(engine_->CommitPrepared(2, {2, 2}, G(2)).ok());
  EXPECT_EQ(engine_->Get("t", "pending"), "reapplied");
}

TEST_F(MiniEngineTest, TornWalTailIsTrimmed) {
  CommitRow("k", "v", 1, {1, 1});
  ASSERT_TRUE(engine_->Sync().ok());
  engine_.reset();
  auto size = env_->GetFileSize("/engine/engine.wal");
  ASSERT_TRUE(size.ok());
  ASSERT_TRUE(env_->TruncateFile("/engine/engine.wal", *size - 3).ok());

  Reopen();
  // The commit record was torn, so only the prepare replays, which then
  // rolls back: the row is gone but the engine is healthy.
  EXPECT_EQ(engine_->Get("t", "k"), std::nullopt);
  EXPECT_EQ(engine_->RolledBackAtRecovery().size(), 1u);
  CommitRow("k", "v2", 5, {2, 2});
  EXPECT_EQ(engine_->Get("t", "k"), "v2");
}

TEST_F(MiniEngineTest, CheckpointTruncatesWalAndPreservesState) {
  for (uint64_t i = 1; i <= 50; ++i) {
    CommitRow("k" + std::to_string(i), "v" + std::to_string(i), i, {1, i});
  }
  const uint64_t checksum = engine_->StateChecksum();
  const auto wal_before = env_->GetFileSize("/engine/engine.wal");
  ASSERT_TRUE(wal_before.ok());
  ASSERT_GT(*wal_before, 0u);

  ASSERT_TRUE(engine_->Checkpoint().ok());
  EXPECT_EQ(*env_->GetFileSize("/engine/engine.wal"), 0u);

  // Post-checkpoint commits land in the fresh WAL.
  CommitRow("extra", "v", 99, {2, 51});

  Reopen();
  EXPECT_EQ(engine_->Get("t", "k25"), "v25");
  EXPECT_EQ(engine_->Get("t", "extra"), "v");
  EXPECT_EQ(engine_->LastAppliedOpId(), (OpId{2, 51}));
  EXPECT_NE(engine_->StateChecksum(), checksum);  // extra row changes it
  EXPECT_EQ(engine_->RowCount(), 51u);
}

TEST_F(MiniEngineTest, CheckpointRefusedWithPreparedTxns) {
  const TxnId txn = engine_->Begin();
  ASSERT_TRUE(engine_->Put(txn, "t", "k", "v").ok());
  ASSERT_TRUE(engine_->Prepare(txn, 1).ok());
  EXPECT_FALSE(engine_->Checkpoint().ok());
  ASSERT_TRUE(engine_->CommitPrepared(1, {1, 1}, G(1)).ok());
  EXPECT_TRUE(engine_->Checkpoint().ok());
}

TEST_F(MiniEngineTest, StateChecksumMatchesAcrossReplicas) {
  // Two engines applying the same transactions in the same order converge
  // to the same checksum (the §5.1 consistency check).
  EngineOptions other_options = options_;
  other_options.dir = "/engine2";
  auto other = MiniEngine::Open(env_.get(), other_options);
  ASSERT_TRUE(other.ok());

  Random rng(77);
  for (uint64_t i = 1; i <= 100; ++i) {
    const std::string key = "k" + std::to_string(rng.Uniform(30));
    const std::string value = "v" + std::to_string(rng.Next());
    for (MiniEngine* e : {engine_.get(), other->get()}) {
      const TxnId txn = e->Begin();
      ASSERT_TRUE(e->Put(txn, "t", key, value).ok());
      ASSERT_TRUE(e->Prepare(txn, i).ok());
      ASSERT_TRUE(e->CommitPrepared(i, {1, i}, G(i)).ok());
    }
  }
  EXPECT_EQ(engine_->StateChecksum(), (*other)->StateChecksum());
  EXPECT_EQ(engine_->ExecutedGtids(), (*other)->ExecutedGtids());
}

class EngineRecoveryFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineRecoveryFuzzTest, RandomCrashPointsNeverCorrupt) {
  // Build a WAL with a random workload, then reopen from every truncated
  // prefix; recovery must always succeed and never resurrect uncommitted
  // writes.
  Random rng(GetParam());
  auto env = NewMemEnv();
  ManualClock clock;
  EngineOptions options;
  options.dir = "/e";
  options.clock = &clock;
  {
    auto engine = MiniEngine::Open(env.get(), options);
    ASSERT_TRUE(engine.ok());
    uint64_t xid = 1;
    for (int i = 0; i < 30; ++i) {
      const TxnId txn = (*engine)->Begin();
      const std::string key = "k" + std::to_string(rng.Uniform(10));
      if (!(*engine)->Put(txn, "t", key, "v" + std::to_string(i)).ok()) {
        ASSERT_TRUE((*engine)->Rollback(txn).ok());
        continue;
      }
      ASSERT_TRUE((*engine)->Prepare(txn, xid).ok());
      if (rng.OneIn(4)) {
        ASSERT_TRUE((*engine)->RollbackPrepared(xid).ok());
      } else if (!rng.OneIn(5)) {
        ASSERT_TRUE((*engine)->CommitPrepared(xid, {1, xid}, G(xid)).ok());
      }
      // else: leave prepared (simulates crash mid-pipeline)
      ++xid;
    }
  }

  auto full = env->ReadFileToString("/e/engine.wal");
  ASSERT_TRUE(full.ok());
  for (size_t cut = 0; cut <= full->size(); cut += 17) {
    ASSERT_TRUE(env->WriteStringToFile(
                        Slice(full->data(), cut), "/e/engine.wal")
                    .ok());
    auto engine = MiniEngine::Open(env.get(), options);
    ASSERT_TRUE(engine.ok()) << "cut=" << cut << ": " << engine.status();
    EXPECT_TRUE((*engine)->PreparedXids().empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineRecoveryFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace myraft::storage
